// Package consistency implements the four consistency models of the paper —
// strong (POSIX), commit, session, eventual — as *executable formal
// specifications*: visibility/ordering predicates evaluated over a recorded
// operation history, following "Formal Definitions and Performance
// Comparison of Consistency Models for Parallel File Systems" (the same
// authors' follow-up; see PAPERS.md).
//
// The input is the total-order op log a pfs.FileSystem emits through its
// HistoryRecorder hook (open, write, read, commit, close, laminate,
// truncate, with payloads and logical timestamps). The checker is an
// independent second implementation: it re-derives *publication* (when a
// write becomes globally available) and *visibility* (which published
// writes a given read must/may observe) from the formal definitions alone —
// it never consults the file system's own extent state — and predicts every
// read's result:
//
//	strong:   a write is published at write time; a read observes the
//	          newest published write per byte (sequential consistency over
//	          the serialized op order).
//	commit:   a write is published at the writer's next commit (fsync) or
//	          close; uncommitted remote writes must stay invisible.
//	session:  a write is published at the writer's close; a read observes
//	          exactly the writes published before the reader's open
//	          (close-to-open), plus its own buffered writes.
//	eventual: a write is published at write time but a remote reader is
//	          only *guaranteed* to observe it after the propagation delay
//	          (bounded staleness); earlier visibility is legal, never
//	          required.
//
// In every model a reader must observe its own writes in program order
// (read-your-writes), lamination makes a file's content visible under every
// model, and truncation is a metadata-path operation that clips published
// data immediately and globally.
//
// A history is accepted iff every read matches the model's prediction.
// Rejection carries a minimal counterexample: the violating read/write op
// pair, the first violating byte, and the predicate clause that failed.
// Ordering violations (lost writes, out-of-order application) surface as
// value mismatches against the derived newest-visible write, so the same
// machinery checks both the visibility and the ordering predicates.
package consistency

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/pfs"
)

// Options parameterizes a check.
type Options struct {
	// EventualDelayNS is the staleness bound of the eventual spec: a remote
	// write must be visible once its publish time is at least this old.
	// 0 selects the pfs default (50 ms), matching pfs.Options.EventualDelay.
	EventualDelayNS uint64
}

// Violation is a minimal counterexample: the observing read, the write
// whose visibility predicate it violates, and the clause that failed.
type Violation struct {
	Model  pfs.Semantics
	Clause string
	// Read is the observing operation (always an EvRead).
	Read pfs.HistoryEvent
	// Write is the conflicting or missing operation, when one is
	// identifiable (nil for malformed histories).
	Write *pfs.HistoryEvent
	// Offset is the first violating byte (absolute file offset), -1 when
	// the violation is about the returned length rather than a byte value.
	Offset int64
	Detail string
}

func (v *Violation) String() string {
	if v == nil {
		return "<accepted>"
	}
	s := fmt.Sprintf("%s: %s: read #%d (rank %d %s [%d,+%d))",
		v.Model, v.Clause, v.Read.Seq, v.Read.Rank, v.Read.Path, v.Read.Off, v.Read.Len)
	if v.Write != nil {
		s += fmt.Sprintf(" vs %s #%d (rank %d [%d,+%d))",
			v.Write.Kind, v.Write.Seq, v.Write.Rank, v.Write.Off, v.Write.Len)
		if v.Write.Trace != 0 {
			s += fmt.Sprintf(" trace=%#x", v.Write.Trace)
		}
	}
	if v.Offset >= 0 {
		s += fmt.Sprintf(" at byte %d", v.Offset)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Result is the outcome of checking one history against one model's spec.
type Result struct {
	Model     pfs.Semantics
	Events    int   // total events consumed (including failed ops)
	Reads     int   // successful reads verified
	Bytes     int64 // read bytes verified
	Violation *Violation
}

// OK reports whether the history satisfies the model's formal spec.
func (r Result) OK() bool { return r.Violation == nil }

// CheckLog is Check over a Log's current contents.
func CheckLog(model pfs.Semantics, log *Log, opt Options) Result {
	return Check(model, log.Events(), opt)
}

// Check evaluates the formal spec of the given model over a recorded
// history and returns accept, or reject with a minimal counterexample. The
// events must be in recorded (Seq) order. Checking stops at the first
// violation: everything after it would be conditioned on state the
// implementation already got wrong.
func Check(model pfs.Semantics, events []pfs.HistoryEvent, opt Options) (res Result) {
	start := time.Now()
	checkHistories.Inc()
	defer func() {
		checkWall.Observe(time.Since(start).Nanoseconds())
		checkEvents.Add(int64(res.Events))
		checkBytes.Add(res.Bytes)
		if res.OK() {
			checkAccepted.Inc()
		} else {
			checkRejected.Inc()
		}
		recordVerdictFlight(res.Events, res.OK())
	}()
	delay := opt.EventualDelayNS
	if delay == 0 {
		delay = 50_000_000 // pfs.Options default
	}
	c := &checker{
		model:   model,
		delay:   delay,
		files:   make(map[string]*fileState),
		pending: make(map[pendKey][]span),
		handles: make(map[uint64]*handleState),
	}
	res.Model = model
	for i := range events {
		ev := &events[i]
		res.Events++
		if ev.Err != "" {
			continue // failed ops left the file system unchanged
		}
		switch ev.Kind {
		case pfs.EvOpen:
			c.open(ev)
		case pfs.EvWrite:
			c.write(ev)
		case pfs.EvCommit:
			c.commit(ev)
		case pfs.EvClose:
			c.close(ev)
		case pfs.EvLaminate:
			c.laminate(ev)
		case pfs.EvTruncate:
			c.truncate(ev)
		case pfs.EvRead:
			res.Reads++
			res.Bytes += int64(len(ev.Data))
			if v := c.checkRead(ev); v != nil {
				v.Model = model
				res.Violation = v
				recordViolationFlight(v)
				return res
			}
		}
	}
	return res
}

// span is one write's payload in the checker's derived published or pending
// state. Published spans carry the derived publish sequence number and
// publish time; pending spans have seq 0.
type span struct {
	off     int64
	data    []byte
	seq     uint64
	pubTime uint64
	writer  int
	src     *pfs.HistoryEvent
}

func (s span) end() int64 { return s.off + int64(len(s.data)) }

type fileState struct {
	published []span // in derived publish order
	laminated bool
}

type pendKey struct {
	rank int
	path string
}

type handleState struct {
	openSnap uint64 // derived publish sequence at open (session visibility)
}

type checker struct {
	model   pfs.Semantics
	delay   uint64
	pubSeq  uint64
	files   map[string]*fileState
	pending map[pendKey][]span
	handles map[uint64]*handleState
}

func (c *checker) file(path string) *fileState {
	f, ok := c.files[path]
	if !ok {
		f = &fileState{}
		c.files[path] = f
	}
	return f
}

// publish appends spans to the file's derived published list in order,
// assigning publish sequence numbers — the formal publication event.
func (c *checker) publish(f *fileState, spans []span, now uint64) {
	for _, s := range spans {
		c.pubSeq++
		s.seq = c.pubSeq
		s.pubTime = now
		f.published = append(f.published, s)
	}
}

// publishPending moves one client's buffered writes for a path into the
// published state (the commit/close/laminate publication point).
func (c *checker) publishPending(path string, rank int, now uint64) {
	k := pendKey{rank, path}
	if p := c.pending[k]; len(p) > 0 {
		c.publish(c.file(path), p, now)
	}
	delete(c.pending, k)
}

// clip applies a truncation to a span list, dropping spans at or beyond
// the new length and shortening spans that straddle it.
func clip(spans []span, length int64) []span {
	kept := spans[:0]
	for _, s := range spans {
		if s.off >= length {
			continue
		}
		if s.end() > length {
			s.data = s.data[:length-s.off]
		}
		kept = append(kept, s)
	}
	return kept
}

func (c *checker) open(ev *pfs.HistoryEvent) {
	if ev.Flags&pfs.OTrunc != 0 {
		f := c.file(ev.Path)
		f.published = clip(f.published, 0)
		// An O_TRUNC open also discards the opener's own buffered writes.
		delete(c.pending, pendKey{ev.Rank, ev.Path})
	}
	c.handles[ev.Handle] = &handleState{openSnap: c.pubSeq}
}

func (c *checker) write(ev *pfs.HistoryEvent) {
	s := span{off: ev.Off, data: ev.Data, writer: ev.Rank, src: ev}
	switch c.model {
	case pfs.Strong, pfs.Eventual:
		// Publication at write time; under eventual the *visibility* of the
		// published span is what the propagation delay gates.
		c.publish(c.file(ev.Path), []span{s}, ev.Now)
	case pfs.Commit, pfs.Session:
		k := pendKey{ev.Rank, ev.Path}
		c.pending[k] = append(c.pending[k], s)
	}
}

func (c *checker) commit(ev *pfs.HistoryEvent) {
	// fsync publishes under commit semantics only: session keeps buffering
	// until close (fsync persists but does not reveal), strong/eventual
	// have nothing buffered.
	if c.model == pfs.Commit {
		c.publishPending(ev.Path, ev.Rank, ev.Now)
	}
}

func (c *checker) close(ev *pfs.HistoryEvent) {
	if c.model == pfs.Commit || c.model == pfs.Session {
		c.publishPending(ev.Path, ev.Rank, ev.Now)
	}
	delete(c.handles, ev.Handle)
}

func (c *checker) laminate(ev *pfs.HistoryEvent) {
	c.publishPending(ev.Path, ev.Rank, ev.Now)
	c.file(ev.Path).laminated = true
}

func (c *checker) truncate(ev *pfs.HistoryEvent) {
	f := c.file(ev.Path)
	f.published = clip(f.published, ev.Off)
	// Truncation clips the *caller's* buffered writes; other clients'
	// buffers are untouched and may republish past the cut later.
	k := pendKey{ev.Rank, ev.Path}
	if p, ok := c.pending[k]; ok {
		if p = clip(p, ev.Off); len(p) == 0 {
			delete(c.pending, k)
		} else {
			c.pending[k] = p
		}
	}
}

// checkRead verifies one read against the model's visibility predicates.
func (c *checker) checkRead(ev *pfs.HistoryEvent) *Violation {
	f := c.file(ev.Path)
	h, ok := c.handles[ev.Handle]
	if !ok {
		return &Violation{Clause: "history-malformed", Read: *ev, Offset: -1,
			Detail: "read through a handle with no recorded open"}
	}

	// must: the model's mandatory visibility predicate. may: what the model
	// additionally admits — identical except under eventual, where a remote
	// write MAY be observed before the staleness bound forces it.
	must := func(s span) bool {
		if f.laminated {
			return true
		}
		switch c.model {
		case pfs.Strong, pfs.Commit:
			return true
		case pfs.Session:
			return s.seq <= h.openSnap
		case pfs.Eventual:
			return s.writer == ev.Rank || s.pubTime+c.delay <= ev.Now
		}
		return false
	}
	may := func(s span) bool {
		if c.model == pfs.Eventual {
			return true
		}
		return must(s)
	}

	own := c.pending[pendKey{ev.Rank, ev.Path}]
	n := ev.Len

	// Canonical expectation: the must-view, composed exactly like a real
	// server materializes a read — mandatory-visible published spans in
	// publish order, then the reader's own buffered writes in program
	// order. The visible EOF counts every mandatory span, in range or not.
	buf := make([]byte, n)
	var visEnd int64
	apply := func(s span) {
		lo, hi := s.off, s.end()
		if hi > visEnd {
			visEnd = hi
		}
		if hi <= ev.Off || lo >= ev.Off+n {
			return
		}
		d := s.data
		if lo < ev.Off {
			d = d[ev.Off-lo:]
			lo = ev.Off
		}
		if hi > ev.Off+n {
			d = d[:ev.Off+n-lo]
		}
		copy(buf[lo-ev.Off:], d)
	}
	for _, s := range f.published {
		if must(s) {
			apply(s)
		}
	}
	for _, s := range own {
		apply(s)
	}
	mustAvail := clampAvail(visEnd, ev.Off, n)
	if bytes.Equal(ev.Data, buf[:mustAvail]) {
		return nil // the implementation produced exactly the mandatory view
	}
	return c.diagnose(ev, f, h, own, must, may, buf[:mustAvail])
}

func clampAvail(visEnd, off, n int64) int64 {
	avail := visEnd - off
	if avail < 0 {
		avail = 0
	}
	if avail > n {
		avail = n
	}
	return avail
}

// diagnose runs the slow, per-byte admissibility analysis for a read that
// diverged from the canonical must-view. Under strong/commit/session the
// spec is deterministic, so this always produces a counterexample; under
// eventual it accepts early-visibility interleavings the canonical view
// does not predict, and rejects everything else.
func (c *checker) diagnose(ev *pfs.HistoryEvent, f *fileState, h *handleState,
	own []span, must, may func(span) bool, expected []byte) *Violation {

	// Length bounds: at least the mandatory view, at most the admissible
	// one (mandatory plus early-visible spans).
	mustAvail := int64(len(expected))
	var mayEnd int64
	for _, s := range f.published {
		if may(s) && s.end() > mayEnd {
			mayEnd = s.end()
		}
	}
	for _, s := range own {
		if s.end() > mayEnd {
			mayEnd = s.end()
		}
	}
	mayAvail := clampAvail(mayEnd, ev.Off, ev.Len)
	got := int64(len(ev.Data))
	if got < mustAvail {
		// Identify the newest mandatory span (or own write) past the short
		// end — the write whose visibility the read denied.
		var culprit *pfs.HistoryEvent
		for _, s := range f.published {
			if must(s) && s.end() > ev.Off+got {
				culprit = s.src
			}
		}
		for _, s := range own {
			if s.end() > ev.Off+got {
				culprit = s.src
			}
		}
		return &Violation{Clause: c.visibilityClause(), Read: *ev, Write: culprit, Offset: -1,
			Detail: fmt.Sprintf("read returned %d bytes where the spec makes %d visible", got, mustAvail)}
	}
	if got > mayAvail {
		return &Violation{Clause: c.isolationClause(), Read: *ev, Write: nil, Offset: -1,
			Detail: fmt.Sprintf("read returned %d bytes where the spec admits at most %d", got, mayAvail)}
	}

	for i := int64(0); i < got; i++ {
		p := ev.Off + i
		b := ev.Data[i]

		// Read-your-writes: the reader's own buffered writes shadow
		// everything they cover, newest first.
		if s := lastCovering(own, p, nil); s != nil {
			if b != s.data[p-s.off] {
				return &Violation{Clause: "po-read-your-writes", Read: *ev, Write: s.src, Offset: p,
					Detail: fmt.Sprintf("got %#02x, own buffered write holds %#02x", b, s.data[p-s.off])}
			}
			continue
		}

		newestMust := lastCovering(f.published, p, must)
		if newestMust != nil && b == newestMust.data[p-newestMust.off] {
			continue
		}
		if newestMust == nil && b == 0 {
			continue // hole (or not-yet-mandatory data) reads as zero
		}
		// Early visibility: a may-visible span newer than the newest
		// mandatory one may already have propagated.
		minSeq := uint64(0)
		if newestMust != nil {
			minSeq = newestMust.seq
		}
		admissible := false
		for _, s := range f.published {
			if s.seq > minSeq && may(s) && covers(s, p) && b == s.data[p-s.off] {
				admissible = true
				break
			}
		}
		if admissible {
			continue
		}

		// Violation. Name the leaked write if the byte matches one the
		// model forbids (a hidden published span or another client's
		// buffer); otherwise the mandatory write went unobserved.
		for _, s := range f.published {
			if !may(s) && covers(s, p) && b == s.data[p-s.off] {
				return &Violation{Clause: c.isolationClause(), Read: *ev, Write: s.src, Offset: p,
					Detail: "observed a write the model requires hidden"}
			}
		}
		for k, spans := range c.pending {
			if k.path != ev.Path || k.rank == ev.Rank {
				continue
			}
			if s := lastCovering(spans, p, func(s span) bool { return b == s.data[p-s.off] }); s != nil {
				return &Violation{Clause: c.isolationClause(), Read: *ev, Write: s.src, Offset: p,
					Detail: fmt.Sprintf("observed rank %d's unpublished write", k.rank)}
			}
		}
		if newestMust != nil {
			return &Violation{Clause: c.visibilityClause(), Read: *ev, Write: newestMust.src, Offset: p,
				Detail: fmt.Sprintf("got %#02x, newest mandatory-visible write holds %#02x",
					b, newestMust.data[p-newestMust.off])}
		}
		return &Violation{Clause: "unexplained-value", Read: *ev, Offset: p,
			Detail: fmt.Sprintf("got %#02x where the spec predicts a zero hole", b)}
	}

	// Every byte individually admissible and the length within bounds —
	// a legal early-visibility interleaving (eventual only).
	return nil
}

// lastCovering returns the last span in publish/program order covering
// offset p and passing pred (nil = all), or nil.
func lastCovering(spans []span, p int64, pred func(span) bool) *span {
	for i := len(spans) - 1; i >= 0; i-- {
		s := &spans[i]
		if covers(*s, p) && (pred == nil || pred(*s)) {
			return s
		}
	}
	return nil
}

func covers(s span, p int64) bool { return s.off <= p && p < s.end() }

// visibilityClause names the model's mandatory-visibility predicate — the
// clause violated when a read misses data the model guarantees.
func (c *checker) visibilityClause() string {
	switch c.model {
	case pfs.Strong:
		return "strong-read-latest"
	case pfs.Commit:
		return "commit-visibility"
	case pfs.Session:
		return "session-visibility"
	case pfs.Eventual:
		return "eventual-bounded-staleness"
	}
	return "visibility"
}

// isolationClause names the model's isolation predicate — the clause
// violated when a read observes data the model requires hidden.
func (c *checker) isolationClause() string {
	switch c.model {
	case pfs.Strong:
		return "strong-read-latest"
	case pfs.Commit:
		return "commit-isolation"
	case pfs.Session:
		return "session-isolation"
	case pfs.Eventual:
		return "eventual-isolation"
	}
	return "isolation"
}
