package storage

import "sync/atomic"

// KillPointFunc observes a named storage kill point. The faults package
// installs its process-kill counter here (mirroring wal.SetKillPointHook)
// when SEMFS_KILL arms a "storage."-prefixed point; storage itself never
// imports faults, which keeps the wal → storage layering acyclic while
// chaos code in faults drives backend-routed runs.
//
// Points, bracketing the three operations whose crash timing matters to
// the durability arguments:
//
//	storage.write.before / storage.write.after
//	storage.sync.before  / storage.sync.after
//	storage.rename.before / storage.rename.after
type KillPointFunc func(point string)

var killHook atomic.Pointer[KillPointFunc]

// SetKillPointHook installs fn as the process-wide storage kill-point
// observer. Pass nil to remove it. The nil fast path costs one atomic load.
func SetKillPointHook(fn KillPointFunc) {
	if fn == nil {
		killHook.Store(nil)
		return
	}
	killHook.Store(&fn)
}

func hitKillPoint(point string) {
	if fn := killHook.Load(); fn != nil {
		(*fn)(point)
	}
}
