package core

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// runTrace executes a body and returns the extracted file accesses.
func runTrace(t *testing.T, ranks int, body func(ctx *harness.Ctx) error) (*recorder.Trace, []*FileAccesses) {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: ranks, Semantics: pfs.Strong},
		recorder.Meta{App: "core-test"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res.Trace, Extract(res.Trace)
}

func findFile(t *testing.T, fas []*FileAccesses, path string) *FileAccesses {
	t.Helper()
	for _, fa := range fas {
		if fa.Path == path {
			return fa
		}
	}
	t.Fatalf("file %s not in extraction (have %d files)", path, len(fas))
	return nil
}

func TestExtractSequentialWrites(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Write(fd, make([]byte, 100)) // [0,100)
		ctx.OS.Write(fd, make([]byte, 50))  // [100,150)
		return ctx.OS.Close(fd)
	})
	fa := findFile(t, fas, "/f")
	if len(fa.Intervals) != 2 {
		t.Fatalf("intervals = %+v", fa.Intervals)
	}
	if fa.Intervals[0].Os != 0 || fa.Intervals[0].Oe != 100 {
		t.Fatalf("first interval [%d,%d)", fa.Intervals[0].Os, fa.Intervals[0].Oe)
	}
	if fa.Intervals[1].Os != 100 || fa.Intervals[1].Oe != 150 {
		t.Fatalf("second interval [%d,%d): offset tracking broken", fa.Intervals[1].Os, fa.Intervals[1].Oe)
	}
	if !fa.Intervals[0].Write {
		t.Fatal("write not marked")
	}
}

func TestExtractSeekAndPositional(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
		ctx.OS.Write(fd, make([]byte, 100))
		ctx.OS.Lseek(fd, 10, recorder.SeekSet)
		ctx.OS.Read(fd, 20)                     // [10,30)
		ctx.OS.Lseek(fd, 5, recorder.SeekCur)   // now at 35
		ctx.OS.Read(fd, 10)                     // [35,45)
		ctx.OS.Lseek(fd, -40, recorder.SeekEnd) // size 100 → 60
		ctx.OS.Read(fd, 10)                     // [60,70)
		ctx.OS.Pwrite(fd, make([]byte, 7), 90)  // [90,97), no offset move
		ctx.OS.Read(fd, 5)                      // [70,75)
		return ctx.OS.Close(fd)
	})
	fa := findFile(t, fas, "/f")
	want := [][2]int64{{0, 100}, {10, 30}, {35, 45}, {60, 70}, {90, 97}, {70, 75}}
	if len(fa.Intervals) != len(want) {
		t.Fatalf("got %d intervals", len(fa.Intervals))
	}
	for i, w := range want {
		got := fa.Intervals[i]
		if got.Os != w[0] || got.Oe != w[1] {
			t.Fatalf("interval %d = [%d,%d), want [%d,%d)", i, got.Os, got.Oe, w[0], w[1])
		}
	}
}

func TestExtractAppendMode(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/log", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Write(fd, make([]byte, 64))
		ctx.OS.Close(fd)
		fd2, _ := ctx.OS.Open("/log", recorder.OWronly|recorder.OAppend, 0)
		ctx.OS.Write(fd2, make([]byte, 16)) // must land at [64,80)
		return ctx.OS.Close(fd2)
	})
	fa := findFile(t, fas, "/log")
	last := fa.Intervals[len(fa.Intervals)-1]
	if last.Os != 64 || last.Oe != 80 {
		t.Fatalf("append interval [%d,%d), want [64,80)", last.Os, last.Oe)
	}
}

func TestExtractTruncReset(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Write(fd, make([]byte, 100))
		ctx.OS.Close(fd)
		fd2, _ := ctx.OS.Open("/f", recorder.OWronly|recorder.OTrunc|recorder.OAppend, 0)
		ctx.OS.Write(fd2, make([]byte, 10)) // append to truncated file → [0,10)
		return ctx.OS.Close(fd2)
	})
	fa := findFile(t, fas, "/f")
	last := fa.Intervals[len(fa.Intervals)-1]
	if last.Os != 0 || last.Oe != 10 {
		t.Fatalf("post-trunc append at [%d,%d), want [0,10)", last.Os, last.Oe)
	}
}

func TestExtractStdio(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Fopen("/s", "w+")
		ctx.OS.Fwrite(fd, make([]byte, 40), 8, 5)
		ctx.OS.Fseek(fd, 0, recorder.SeekSet)
		ctx.OS.Fread(fd, 8, 2)
		return ctx.OS.Fclose(fd)
	})
	fa := findFile(t, fas, "/s")
	if len(fa.Intervals) != 2 {
		t.Fatalf("intervals: %+v", fa.Intervals)
	}
	if fa.Intervals[0].Os != 0 || fa.Intervals[0].Oe != 40 || !fa.Intervals[0].Write {
		t.Fatalf("fwrite interval wrong: %+v", fa.Intervals[0])
	}
	if fa.Intervals[1].Os != 0 || fa.Intervals[1].Oe != 16 || fa.Intervals[1].Write {
		t.Fatalf("fread interval wrong: %+v", fa.Intervals[1])
	}
}

func TestExtractToTcAnnotations(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Write(fd, make([]byte, 10))
		ctx.OS.Fsync(fd)
		ctx.OS.Write(fd, make([]byte, 10))
		return ctx.OS.Close(fd)
	})
	fa := findFile(t, fas, "/f")
	w1, w2 := fa.Intervals[0], fa.Intervals[1]
	if w1.To == NoTime || w1.To > w1.T {
		t.Fatalf("w1.To = %d", w1.To)
	}
	if w1.TcCommit == NoTime || w1.TcCommit <= w1.T || w1.TcCommit >= w2.T {
		t.Fatalf("w1.TcCommit = %d must be the fsync between the writes", w1.TcCommit)
	}
	if w1.TcClose <= w2.T || w1.TcClose == NoTime {
		t.Fatalf("w1.TcClose = %d must be the final close", w1.TcClose)
	}
	if w2.TcCommit == NoTime || w2.TcCommit != w2.TcClose {
		t.Fatalf("w2 commit should be the close: %d vs %d", w2.TcCommit, w2.TcClose)
	}
}

func TestExtractMultiRank(t *testing.T) {
	_, fas := runTrace(t, 4, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/shared", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Pwrite(fd, make([]byte, 64), int64(ctx.Rank)*64)
		return ctx.OS.Close(fd)
	})
	fa := findFile(t, fas, "/shared")
	if len(fa.Intervals) != 4 {
		t.Fatalf("want 4 intervals, got %d", len(fa.Intervals))
	}
	ranks := map[int32]bool{}
	for _, ivl := range fa.Intervals {
		ranks[ivl.Rank] = true
	}
	if len(ranks) != 4 {
		t.Fatalf("ranks = %v", ranks)
	}
	if len(fa.OpensByRank) != 4 || len(fa.ClosesByRank) != 4 {
		t.Fatal("open/close tables incomplete")
	}
}

func TestExtractOriginAttribution(t *testing.T) {
	// A write issued through a library layer must be attributed to it.
	res, err := harness.Run(harness.Config{Ranks: 1, Semantics: pfs.Strong},
		recorder.Meta{App: "attr"}, func(ctx *harness.Ctx) error {
			// Emit a synthetic HDF5-layer record enclosing a posix write.
			ts := ctx.OS.Clock().Stamp()
			fd, _ := ctx.OS.Open("/h", recorder.OCreat|recorder.OWronly, 0o644)
			ctx.OS.Pwrite(fd, make([]byte, 32), 0)
			ctx.Tracer.Emit(recorder.Record{
				Layer: recorder.LayerHDF5, Func: recorder.FuncH5Dwrite,
				TStart: ts, TEnd: ctx.OS.Clock().Stamp(), Path: "/h",
			})
			ctx.OS.Pwrite(fd, make([]byte, 32), 100) // app-level write
			return ctx.OS.Close(fd)
		})
	if err != nil {
		t.Fatal(err)
	}
	fas := Extract(res.Trace)
	fa := findFile(t, fas, "/h")
	if fa.Intervals[0].Origin != recorder.LayerHDF5 {
		t.Fatalf("first write origin = %v, want HDF5", fa.Intervals[0].Origin)
	}
	if fa.Intervals[1].Origin != recorder.LayerApp {
		t.Fatalf("second write origin = %v, want App", fa.Intervals[1].Origin)
	}
	if fa.Intervals[0].Phase < 0 {
		t.Fatal("library-issued write must carry a phase id")
	}
	if fa.Intervals[1].Phase != -1 {
		t.Fatal("app-level write must have phase -1")
	}
}

func TestExtractIgnoresFailedAndZeroOps(t *testing.T) {
	_, fas := runTrace(t, 1, func(ctx *harness.Ctx) error {
		ctx.OS.Open("/missing", recorder.ORdonly, 0) // fails
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
		ctx.OS.Read(fd, 100) // empty file → 0 bytes → no interval
		ctx.OS.Write(fd, make([]byte, 10))
		return ctx.OS.Close(fd)
	})
	for _, fa := range fas {
		if fa.Path == "/missing" && len(fa.Intervals) > 0 {
			t.Fatal("failed open produced intervals")
		}
		if fa.Path == "/f" && len(fa.Intervals) != 1 {
			t.Fatalf("/f intervals = %+v", fa.Intervals)
		}
	}
}
