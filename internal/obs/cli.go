package obs

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// CLI plumbing shared by cmd/semanalyze, cmd/semrepro, cmd/pfsbench and
// cmd/semtrace: the -metrics / -trace-spans / -pprof / -serve-metrics /
// -flight flags all funnel through here so the binaries expose telemetry
// identically.

// CLIFlags bundles the telemetry flags of the repo's binaries. Call
// Register before flag.Parse, Start right after it, and Flush (usually
// deferred) once the run finishes.
type CLIFlags struct {
	Metrics          string
	TraceSpans       string
	Pprof            string
	ServeMetrics     string
	ServeMetricsHold time.Duration
	Flight           string

	boundPprof   string
	boundMetrics string
	stopPprof    func()
	stopMetrics  func()
}

// Register installs the telemetry flags on fs.
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "",
		`write a JSON metrics snapshot to this file on exit ("-" for stdout)`)
	fs.StringVar(&f.TraceSpans, "trace-spans", "",
		"write spans to this file on exit as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.Pprof, "pprof", "",
		`serve net/http/pprof on this address (e.g. "localhost:6060" or ":0")`)
	fs.StringVar(&f.ServeMetrics, "serve-metrics", "",
		`serve live /metrics, /metrics.json and /healthz on this address (e.g. ":9090" or ":0")`)
	fs.DurationVar(&f.ServeMetricsHold, "serve-metrics-hold", 0,
		"keep the -serve-metrics exporter up this long after the run finishes (scrape window for CI)")
	fs.StringVar(&f.Flight, "flight", "",
		"arm the flight recorder: dump recent semantic events to this file on panic, kill points and consistency violations")
}

// ServeMetricsHook starts the live metrics exporter; internal/obs/live
// installs it at init time (obs cannot import live — live imports obs).
// Binaries that want -serve-metrics blank-import repro/internal/obs/live.
var ServeMetricsHook func(addr string) (bound string, stop func(), err error)

// Start applies the parsed flags: resets the default registry so the
// snapshot covers exactly this invocation, enables span collection when
// -trace-spans was given, arms the flight recorder when -flight was, and
// starts the pprof / live-metrics listeners, logging one
// "obs: <what> listening on <url>" line per listener to w with the *bound*
// address (so ":0" reports the port that was actually assigned).
func (f *CLIFlags) Start(w io.Writer) error {
	if f.Metrics != "" || f.ServeMetrics != "" {
		Default().Reset()
	}
	if f.TraceSpans != "" || f.ServeMetrics != "" {
		Default().Tracer().SetEnabled(true)
	}
	if f.Flight != "" {
		ArmFlightDump(f.Flight)
	}
	if f.Pprof != "" {
		addr, stop, err := StartPprof(f.Pprof)
		if err != nil {
			return err
		}
		f.boundPprof, f.stopPprof = addr, stop
		fmt.Fprintf(w, "obs: pprof listening on http://%s/debug/pprof/\n", displayAddr(addr))
	}
	if f.ServeMetrics != "" {
		if ServeMetricsHook == nil {
			return errors.New(`obs: -serve-metrics requires the live exporter (import _ "repro/internal/obs/live")`)
		}
		addr, stop, err := ServeMetricsHook(f.ServeMetrics)
		if err != nil {
			return err
		}
		f.boundMetrics, f.stopMetrics = addr, stop
		fmt.Fprintf(w, "obs: metrics listening on http://%s/metrics\n", displayAddr(addr))
	}
	return nil
}

// PprofAddr returns the bound -pprof address ("" when not serving).
func (f *CLIFlags) PprofAddr() string { return f.boundPprof }

// MetricsAddr returns the bound -serve-metrics address ("" when not
// serving).
func (f *CLIFlags) MetricsAddr() string { return f.boundMetrics }

// displayAddr rewrites a bound listen address into one a human can curl:
// the unspecified hosts a ":0"-style flag binds ("0.0.0.0", "::", "") are
// reachable via loopback, so report that.
func displayAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}

// Flush writes the requested telemetry files and stops the listeners Start
// opened. When -serve-metrics-hold is set the exporter stays up that long
// first — the scrape window a CI job needs between "run finished" and
// "metrics gone".
func (f *CLIFlags) Flush() error {
	var errs []error
	if f.Metrics != "" {
		errs = append(errs, WriteMetricsFile(f.Metrics))
	}
	if f.TraceSpans != "" {
		errs = append(errs, WriteSpansFile(f.TraceSpans))
	}
	if f.stopMetrics != nil {
		if f.ServeMetricsHold > 0 {
			time.Sleep(f.ServeMetricsHold)
		}
		f.stopMetrics()
		f.stopMetrics = nil
	}
	if f.stopPprof != nil {
		f.stopPprof()
		f.stopPprof = nil
	}
	return errors.Join(errs...)
}

// WriteMetricsFile snapshots the default registry and writes it to path as
// JSON ("-" writes to stdout).
func WriteMetricsFile(path string) error {
	b, err := Default().Snapshot().JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write metrics: %w", err)
	}
	return nil
}

// WriteSpansFile writes the default tracer's spans to path as a Chrome
// trace_event JSON document (open in chrome://tracing or Perfetto).
func WriteSpansFile(path string) error {
	b, err := Default().Tracer().ChromeTraceJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write spans: %w", err)
	}
	return nil
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound address — so callers can pass
// ":0" and print where the profiler actually landed — plus a stop function
// that closes the listener (idempotent).
func StartPprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		// Serve returns with a "use of closed network listener" error once
		// stop closes ln; that is the expected shutdown path.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), func() { _ = ln.Close() }, nil
}
