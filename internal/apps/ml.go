package apps

import (
	"repro/internal/harness"
	"repro/internal/recorder"
	"repro/internal/silo"
)

// lbannConfig emulates LBANN training the CIFAR-10 autoencoder: the one
// read-intensive application of the study. Every rank reads the entire
// staged dataset from the beginning (locally consecutive), at its own pace
// (globally random, Figure 1), then trains with allreduce-only epochs.
func lbannConfig() *Config {
	const chunksPerRank = 8
	return &Config{
		App: "LBANN", Library: "POSIX",
		Description: "Autoencoder on CIFAR-10; every rank loads the whole dataset into memory, then communication-only training",
		Setup: func(ctx *harness.Ctx, p Params) error {
			if ctx.Rank != 0 {
				return nil
			}
			fd, err := ctx.OS.Open("/data/cifar10.bin", recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
			if err != nil {
				return err
			}
			for c := 0; c < chunksPerRank*4; c++ {
				if _, err := ctx.OS.Write(fd, fill("cifar", 0, c, p.Block)); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := ctx.OS.Access("/data/cifar10.bin"); err != nil {
				return err
			}
			info, err := ctx.OS.Stat("/data/cifar10.bin")
			if err != nil {
				return err
			}
			fd, err := ctx.OS.Open("/data/cifar10.bin", recorder.ORdonly, 0)
			if err != nil {
				return err
			}
			var read int64
			chunk := 0
			for read < info.Size {
				got, err := ctx.OS.Read(fd, p.Block)
				if err != nil {
					return err
				}
				if len(got) == 0 {
					break
				}
				if p.Verify {
					checkFill(ctx, "lbann dataset", "cifar", 0, chunk, got, p.Block)
				}
				read += int64(len(got))
				chunk++
				// Per-sample preprocessing desynchronizes the ranks: the
				// PFS sees an interleaved, random-looking global stream.
				ctx.Compute(30, 150)
			}
			if err := ctx.OS.Close(fd); err != nil {
				return err
			}
			// Training epochs: gradient allreduce only, no file I/O.
			for e := 0; e < p.Steps; e++ {
				ctx.MPI.Compute(2)
				ctx.MPI.Allreduce(int64(e), mpiOpSum)
			}
			return ctx.Failures()
		},
	}
}

// macsioConfig emulates MACSio in its Silo multi-file mode (Table 5:
// "simulate the I/O behaviours of ALE3D"): N ranks write M files per dump
// via baton passing (N-M strided), with the group root's same-session TOC
// rewrite (WAW-S).
func macsioConfig() *Config {
	return &Config{
		App: "MACSio", Library: "Silo",
		Description: "ALE3D-proxy multi-file dumps: one Silo file per node group, baton-passed, three variables per rank",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/macsio.json", 350)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/macsio.json"); err != nil {
				return err
			}
			dump := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(1)
				ctx.MPI.Barrier()
				if step%p.CheckpointEvery != 0 {
					continue
				}
				err := silo.Dump(ctx.MPI, ctx.OS, ctx.Tracer,
					sprintfDump(dump), []string{"pressure", "density", "energy"},
					silo.Options{BlockSize: p.Block})
				if err != nil {
					return err
				}
				dump++
			}
			return ctx.Failures()
		},
	}
}

func sprintfDump(i int) string {
	// "/macsio_00000" style base names; silo appends ".NNN.silo".
	digits := []byte{'0', '0', '0', '0', '0'}
	for k := len(digits) - 1; k >= 0 && i > 0; k-- {
		digits[k] = byte('0' + i%10)
		i /= 10
	}
	return "/macsio_" + string(digits)
}
