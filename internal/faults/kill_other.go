//go:build !unix

package faults

// killProcess approximates SIGKILL where signals are unavailable: exit
// immediately without running deferred functions, with the conventional
// 128+9 status.
func killProcess() { fallbackExit() }
