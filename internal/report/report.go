// Package report renders the analysis results in the shape of the paper's
// tables and figures: aligned text tables for terminals and CSV series for
// plotting. One renderer exists per table/figure of the evaluation section.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// Table1 renders the PFS ↔ consistency-semantics categorization.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: HPC file systems and their consistency semantics\n\n")
	groups := map[pfs.Semantics][]string{}
	for _, s := range pfs.Registry() {
		groups[s.Semantics] = append(groups[s.Semantics], s.Name)
	}
	rows := [][2]string{}
	for _, sem := range pfs.AllSemantics() {
		rows = append(rows, [2]string{titleCase(sem.String()) + " Consistency", strings.Join(groups[sem], ", ")})
	}
	writeTable(&b, []string{"Consistency Semantics", "File Systems"}, rows)
	return b.String()
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Table3Row is one application configuration's high-level patterns.
type Table3Row struct {
	Config   string
	Patterns []core.HighLevelPattern
}

// Table3 renders the X-Y × layout matrix with application names in the
// cells, as the paper formats it.
func Table3(rows []Table3Row) string {
	layouts := []core.Layout{core.LayoutConsecutive, core.LayoutStrided, core.LayoutStridedCyclic}
	xys := []string{"N-N", "N-M", "N-1", "M-M", "M-1", "1-1"}
	cell := map[string]map[core.Layout][]string{}
	for _, xy := range xys {
		cell[xy] = map[core.Layout][]string{}
	}
	for _, r := range rows {
		for _, p := range r.Patterns {
			xy := p.X.String() + "-" + p.Y.String()
			if _, ok := cell[xy]; !ok {
				continue
			}
			if p.Layout > core.LayoutStridedCyclic {
				continue
			}
			cell[xy][p.Layout] = appendUnique(cell[xy][p.Layout], r.Config)
		}
	}
	var b strings.Builder
	b.WriteString("Table 3: High-level access patterns of applications studied\n\n")
	header := []string{"", "Consecutive", "Strided", "Strided Cyclic"}
	var trows [][]string
	for _, xy := range xys {
		row := []string{xy}
		for _, l := range layouts {
			row = append(row, strings.Join(cell[xy][l], ", "))
		}
		trows = append(trows, row)
	}
	writeWideTable(&b, header, trows)
	return b.String()
}

func appendUnique(list []string, s string) []string {
	for _, v := range list {
		if v == s {
			return list
		}
	}
	return append(list, s)
}

// Table4Row is one configuration's conflict signatures.
type Table4Row struct {
	Config  string
	Library string
	Session core.ConflictSignature
	Commit  core.ConflictSignature
}

// Table4 renders the conflicts-under-session-semantics table with the
// paper's check-mark layout, plus the commit-semantics comparison column.
func Table4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Conflicts with session semantics ('S' same process, 'D' distinct processes)\n\n")
	header := []string{"Application", "I/O Library", "WAW-S", "WAW-D", "RAW-S", "RAW-D", "commit differs?"}
	var trows [][]string
	mark := func(v bool) string {
		if v {
			return "x"
		}
		return ""
	}
	for _, r := range rows {
		diff := ""
		if r.Session != r.Commit {
			diff = "yes (conflicts disappear)"
		}
		trows = append(trows, []string{
			r.Config, r.Library,
			mark(r.Session.WAWSame), mark(r.Session.WAWDiff),
			mark(r.Session.RAWSame), mark(r.Session.RAWDiff),
			diff,
		})
	}
	writeWideTable(&b, header, trows)
	return b.String()
}

// Table5 renders the application/configuration inventory.
func Table5(rows [][2]string) string {
	var b strings.Builder
	b.WriteString("Table 5: Applications and configurations\n\n")
	writeTable(&b, []string{"Configuration", "Description"}, rows)
	return b.String()
}

// Figure1Row is one bar of Figure 1: a configuration's pattern mix.
type Figure1Row struct {
	Config string
	Global core.PatternMix
	Local  core.PatternMix
}

// Figure1 renders the global/local access-pattern mixes as text bars.
func Figure1(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: Overview of low-level access patterns (% consecutive/monotonic/random)\n\n")
	b.WriteString("(a) Global pattern from the perspective of the PFS\n")
	for _, r := range rows {
		writeBar(&b, r.Config, r.Global)
	}
	b.WriteString("\n(b) Local pattern from the perspective of individual processes\n")
	for _, r := range rows {
		writeBar(&b, r.Config, r.Local)
	}
	return b.String()
}

// Figure1CSV emits the mixes as CSV (config, level, consecutive, monotonic,
// random).
func Figure1CSV(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("config,level,consecutive_pct,monotonic_pct,random_pct\n")
	for _, r := range rows {
		gc, gm, gr := r.Global.Pct()
		lc, lm, lr := r.Local.Pct()
		fmt.Fprintf(&b, "%s,global,%.1f,%.1f,%.1f\n", r.Config, gc, gm, gr)
		fmt.Fprintf(&b, "%s,local,%.1f,%.1f,%.1f\n", r.Config, lc, lm, lr)
	}
	return b.String()
}

func writeBar(b *strings.Builder, label string, m core.PatternMix) {
	c, mo, r := m.Pct()
	const width = 40
	nc := int(c * width / 100)
	nm := int(mo * width / 100)
	nr := width - nc - nm
	if nr < 0 {
		nr = 0
	}
	fmt.Fprintf(b, "  %-22s |%s%s%s| c=%5.1f%% m=%5.1f%% r=%5.1f%%\n",
		label,
		strings.Repeat("#", nc), strings.Repeat("=", nm), strings.Repeat(".", nr),
		c, mo, r)
}

// Figure2CSV emits the FLASH access-over-time scatter data of Figure 2 for
// the write operations of one file: time_us, rank, offset, bytes. The
// separate checkpoint/plot files and fbs/nofbs variants give the six panels.
// Extraction goes through the process-wide cache.
func Figure2CSV(tr *recorder.Trace, path string) string {
	return Figure2CSVOf(core.ExtractShared(tr), path)
}

// Figure2CSVOf is Figure2CSV over pre-extracted accesses.
func Figure2CSVOf(fas []*core.FileAccesses, path string) string {
	var b strings.Builder
	b.WriteString("time_us,rank,offset,bytes\n")
	type row struct {
		t           uint64
		rank        int32
		off, nbytes int64
	}
	var rows []row
	for _, fa := range fas {
		if fa.Path != path {
			continue
		}
		for _, iv := range fa.Intervals {
			if !iv.Write {
				continue
			}
			rows = append(rows, row{iv.T, iv.Rank, iv.Os, iv.Oe - iv.Os})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	for _, r := range rows {
		fmt.Fprintf(&b, "%.1f,%d,%d,%d\n", float64(r.t)/1000, r.rank, r.off, r.nbytes)
	}
	return b.String()
}

// Figure3Row is one configuration's metadata census.
type Figure3Row struct {
	Config string
	Census *core.Census
}

// Figure3 renders the metadata-operations matrix: configurations × POSIX
// metadata operations, each cell naming the layer(s) that issued the call
// (A=application, H=HDF5, M=MPI library, N=NetCDF, D=ADIOS, S=Silo).
func Figure3(rows []Figure3Row) string {
	funcSet := map[recorder.Func]bool{}
	for _, r := range rows {
		for _, f := range r.Census.Funcs() {
			funcSet[f] = true
		}
	}
	funcs := make([]recorder.Func, 0, len(funcSet))
	for f := range funcSet {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].String() < funcs[j].String() })

	var b strings.Builder
	b.WriteString("Figure 3: Metadata operations used by applications\n")
	b.WriteString("(cells: A=app, H=HDF5, M=MPI library, N=NetCDF, D=ADIOS, S=Silo)\n\n")
	header := []string{"Configuration"}
	for _, f := range funcs {
		header = append(header, f.String())
	}
	var trows [][]string
	for _, r := range rows {
		row := []string{r.Config}
		for _, f := range funcs {
			row = append(row, originLetters(r.Census, f))
		}
		trows = append(trows, row)
	}
	writeWideTable(&b, header, trows)
	return b.String()
}

func originLetters(c *core.Census, f recorder.Func) string {
	letters := map[string]string{
		"App": "A", "HDF5": "H", "MPI": "M", "NetCDF": "N", "ADIOS": "D", "Silo": "S",
	}
	var out []string
	for _, origin := range c.Origins() {
		if c.Counts[origin][f] > 0 {
			out = append(out, letters[origin])
		}
	}
	return strings.Join(out, "")
}

// Verdicts renders the per-application bottom line of §6.3.
func Verdicts(rows []struct {
	Config  string
	Verdict core.Verdict
}) string {
	var b strings.Builder
	b.WriteString("Consistency-semantics verdicts (§6.3)\n\n")
	header := []string{"Configuration", "weakest sufficient model", "needs per-process ordering"}
	var trows [][]string
	for _, r := range rows {
		ppo := ""
		if r.Verdict.NeedsPerProcessOrdering {
			ppo = "yes (unsafe on BurstFS)"
		}
		trows = append(trows, []string{r.Config, r.Verdict.Weakest.String(), ppo})
	}
	writeWideTable(&b, header, trows)
	return b.String()
}

// writeTable renders a two-column aligned table.
func writeTable(b *strings.Builder, header []string, rows [][2]string) {
	wide := make([][]string, len(rows))
	for i, r := range rows {
		wide[i] = []string{r[0], r[1]}
	}
	writeWideTable(b, header, wide)
}

// writeWideTable renders an n-column aligned table with a separator line.
func writeWideTable(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range rows {
		line(r)
	}
}
