package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/recorder"
)

// Result codec: a completed harness.Result serialized for the journal. The
// encoding reuses the recorder's canonical per-rank binary streams, so a
// decoded result's trace is record-for-record identical to the one that ran
// — the property that lets a resumed sweep render byte-identical reports.
//
//	uvarint header length | header JSON {v, meta}
//	uvarint rank count
//	per rank: uvarint stream length | EncodeRankStream bytes

// resultCodecVersion guards the blob layout inside journal records (the
// store's SchemaVersion guards the journal framing around them).
const resultCodecVersion = 1

type resultHeader struct {
	V    int           `json:"v"`
	Meta recorder.Meta `json:"meta"`
}

// EncodeResult serializes a successful result. Failed results are refused:
// the journal's contract is that a journaled configuration is complete and
// need never re-run.
func EncodeResult(res *harness.Result) ([]byte, error) {
	if res == nil || res.Trace == nil {
		return nil, fmt.Errorf("ckpt: refusing to journal a result with no trace")
	}
	if err := res.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: refusing to journal a failed result: %w", err)
	}
	hdr, err := json.Marshal(resultHeader{V: resultCodecVersion, Meta: res.Trace.Meta})
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out bytes.Buffer
	var u [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(u[:], v)
		out.Write(u[:n])
	}
	putUvarint(uint64(len(hdr)))
	out.Write(hdr)
	putUvarint(uint64(len(res.Trace.PerRank)))
	var stream bytes.Buffer
	for rank, rs := range res.Trace.PerRank {
		stream.Reset()
		if err := recorder.EncodeRankStream(&stream, rank, rs); err != nil {
			return nil, fmt.Errorf("ckpt: encoding rank %d: %w", rank, err)
		}
		putUvarint(uint64(stream.Len()))
		out.Write(stream.Bytes())
	}
	return out.Bytes(), nil
}

// DecodeResult reconstructs a journaled result. The returned Result carries
// the full trace with Replayed set; it has no live file system and no rank
// errors (only successful runs are journaled).
func DecodeResult(b []byte) (*harness.Result, error) {
	br := bytes.NewReader(b)
	hlen, err := binary.ReadUvarint(br)
	if err != nil || hlen > uint64(br.Len()) {
		return nil, fmt.Errorf("ckpt: corrupt result header length")
	}
	hdr := make([]byte, hlen)
	if _, err := br.Read(hdr); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var h resultHeader
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("ckpt: parsing result header: %w", err)
	}
	if h.V != resultCodecVersion {
		return nil, fmt.Errorf("ckpt: result codec version %d, want %d", h.V, resultCodecVersion)
	}
	nranks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if nranks != uint64(h.Meta.Ranks) {
		return nil, fmt.Errorf("ckpt: result has %d rank streams, meta declares %d", nranks, h.Meta.Ranks)
	}
	tr := &recorder.Trace{Meta: h.Meta, PerRank: make([][]recorder.Record, nranks)}
	for rank := uint64(0); rank < nranks; rank++ {
		slen, err := binary.ReadUvarint(br)
		if err != nil || slen > uint64(br.Len()) {
			return nil, fmt.Errorf("ckpt: corrupt stream length for rank %d", rank)
		}
		stream := make([]byte, slen)
		if _, err := br.Read(stream); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		gotRank, rs, err := recorder.DecodeRankStream(bytes.NewReader(stream))
		if err != nil {
			return nil, fmt.Errorf("ckpt: decoding rank %d: %w", rank, err)
		}
		if gotRank != int(rank) {
			return nil, fmt.Errorf("ckpt: stream %d holds rank %d", rank, gotRank)
		}
		tr.PerRank[rank] = rs
	}
	return &harness.Result{Trace: tr, Replayed: true}, nil
}

// AppendResult journals one completed configuration result under key.
func (s *Store) AppendResult(key string, res *harness.Result) error {
	blob, err := EncodeResult(res)
	if err != nil {
		return err
	}
	return s.Append(key, blob)
}

// LookupResult fetches and decodes a journaled result. ok reports a journal
// hit; a hit that fails to decode returns the error so callers can fall back
// to re-execution.
func (s *Store) LookupResult(key string) (*harness.Result, bool, error) {
	blob, ok := s.Lookup(key)
	if !ok {
		return nil, false, nil
	}
	res, err := DecodeResult(blob)
	if err != nil {
		return nil, true, err
	}
	return res, true, nil
}
