package pfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestLaminationPublishesGlobally(t *testing.T) {
	// Even under session semantics, a laminated file is visible to readers
	// whose sessions predate the lamination (UnifyFS §3.2).
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("final"), 20)
	hr := mustOpen(t, r, "/ckpt", ORdonly, 15) // opened before lamination
	if got := readAll(t, hr, 0, 5, 25); len(got) != 0 {
		t.Fatalf("pending data leaked before lamination: %q", got)
	}
	if _, err := hw.Laminate(30); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, hr, 0, 5, 40); !bytes.Equal(got, []byte("final")) {
		t.Fatalf("laminated data not globally visible: %q", got)
	}
}

func TestLaminationMakesFileReadOnly(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("x"), 10)
	if _, err := h.Laminate(20); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(0, []byte("y"), 30); !errors.Is(err, ErrLaminated) {
		t.Fatalf("write after lamination: %v", err)
	}
	if _, err := h.Truncate(0); !errors.Is(err, ErrLaminated) {
		t.Fatalf("truncate after lamination: %v", err)
	}
	if _, _, err := c.Open("/f", OWronly|OTrunc, 40); !errors.Is(err, ErrLaminated) {
		t.Fatalf("O_TRUNC open after lamination: %v", err)
	}
	// Reads still work.
	if got := readAll(t, h, 0, 1, 50); !bytes.Equal(got, []byte("x")) {
		t.Fatalf("read after lamination: %q", got)
	}
}

func TestLaminateClosedHandle(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|OWronly, 1)
	if _, err := h.Close(10); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Laminate(20); !errors.Is(err, ErrClosed) {
		t.Fatalf("laminate on closed handle: %v", err)
	}
}

func TestUnorderedSameProcessQuirk(t *testing.T) {
	// BurstFS (§3.5): a read following two same-process overlapping writes
	// may return either value. Our model returns the older one, so a
	// header-rewrite protocol reads stale data.
	fs := New(Options{Semantics: Commit, UnorderedSameProcess: true})
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("old!"), 10)
	writeAll(t, h, 0, []byte("new!"), 20)
	got := readAll(t, h, 0, 4, 30)
	if bytes.Equal(got, []byte("new!")) {
		t.Fatalf("quirk did not surface: read %q", got)
	}
	if !bytes.Equal(got, []byte("old!")) {
		t.Fatalf("unexpected content %q", got)
	}
	// Disjoint writes remain correct even with the quirk.
	writeAll(t, h, 10, []byte("AA"), 40)
	writeAll(t, h, 20, []byte("BB"), 50)
	if got := readAll(t, h, 10, 2, 60); !bytes.Equal(got, []byte("AA")) {
		t.Fatalf("disjoint write corrupted: %q", got)
	}
	// After a commit the published order is authoritative again.
	if _, err := h.Commit(70); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, h, 0, 4, 80); !bytes.Equal(got, []byte("new!")) {
		t.Fatalf("published read wrong: %q", got)
	}
}
