package recorder

import "repro/internal/obs"

// Degraded-load telemetry: LoadDirLenient's salvage outcome on the
// process-wide registry, so a pipeline that quietly ate a damaged trace
// still shows up in the metrics snapshot (DESIGN.md §9 naming:
// recorder.salvage.*).
var (
	salvageStreamsFull       = obs.Default().Counter("recorder.salvage.streams_full")
	salvageStreamsTruncated  = obs.Default().Counter("recorder.salvage.streams_truncated")
	salvageStreamsUnreadable = obs.Default().Counter("recorder.salvage.streams_unreadable")
	salvageRecordsKept       = obs.Default().Counter("recorder.salvage.records_kept")
	salvageRecordsDropped    = obs.Default().Counter("recorder.salvage.records_dropped")
)

// Observe publishes one lenient load's salvage outcome. LoadDirLenient
// calls it itself; the format-sniffing loader in internal/recorder/colfmt
// builds its own Salvage and calls it once per load.
func (s *Salvage) Observe() { s.observe() }

// observe publishes one lenient load's salvage outcome.
func (s *Salvage) observe() {
	salvageStreamsFull.Add(int64(s.Full))
	salvageStreamsTruncated.Add(int64(s.Truncated))
	salvageStreamsUnreadable.Add(int64(s.Unreadable))
	salvageRecordsKept.Add(int64(s.Records))
	salvageRecordsDropped.Add(int64(s.Dropped))
}
