package core

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 13, 100} {
			hits := make([]int32, n)
			ParallelFor(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(5); got != 5 {
		t.Fatalf("EffectiveWorkers(5) = %d", got)
	}
	if got := EffectiveWorkers(0); got < 1 {
		t.Fatalf("EffectiveWorkers(0) = %d", got)
	}
	if got := EffectiveWorkers(-2); got < 1 {
		t.Fatalf("EffectiveWorkers(-2) = %d", got)
	}
}

// emptyTraces enumerates the degenerate inputs every parallel entry point
// must survive: no ranks at all, and ranks with empty record streams.
func emptyTraces() []*recorder.Trace {
	return []*recorder.Trace{
		{Meta: recorder.Meta{App: "none", Ranks: 0}},
		{Meta: recorder.Meta{App: "empty", Ranks: 3}, PerRank: make([][]recorder.Record, 3)},
	}
}

func TestParallelAnalysisEmptyTrace(t *testing.T) {
	for _, tr := range emptyTraces() {
		for _, w := range []int{0, 1, 4} {
			if got := ExtractParallel(tr, w); len(got) != 0 {
				t.Fatalf("%s/w=%d: extracted %d files from empty trace", tr.Meta.App, w, len(got))
			}
			byFile, sig := AnalyzeConflictsParallel(tr, pfs.Session, w)
			if len(byFile) != 0 || sig.Any() {
				t.Fatalf("%s/w=%d: conflicts from empty trace", tr.Meta.App, w)
			}
			if v := AnalyzeParallel(tr, w); v.Weakest != pfs.Session {
				t.Fatalf("%s/w=%d: empty trace verdict %v", tr.Meta.App, w, v.Weakest)
			}
			if c := MetadataCensusParallel(tr, w); c.Total() != 0 {
				t.Fatalf("%s/w=%d: census of empty trace = %d", tr.Meta.App, w, c.Total())
			}
			if cs := DetectMetadataConflictsParallel(tr, w); len(cs) != 0 {
				t.Fatalf("%s/w=%d: metadata conflicts from empty trace", tr.Meta.App, w)
			}
		}
	}
}

// TestParallelWorkersExceedFiles pins the pool-larger-than-work shape: a
// single-file, single-rank trace analyzed with a 64-worker pool.
func TestParallelWorkersExceedFiles(t *testing.T) {
	tr := &recorder.Trace{Meta: recorder.Meta{App: "tiny", Ranks: 1}, PerRank: [][]recorder.Record{{
		{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncOpen, TStart: 1, TEnd: 2, Path: "/one",
			Args: []int64{int64(recorder.OCreat | recorder.OWronly), 0o644, 3}},
		{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncWrite, TStart: 3, TEnd: 4, Args: []int64{3, 10, 10}},
		{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncClose, TStart: 5, TEnd: 6, Args: []int64{3}},
	}}}
	want := Extract(tr)
	for _, w := range []int{2, 64} {
		if got := ExtractParallel(tr, w); !reflect.DeepEqual(want, got) {
			t.Fatalf("w=%d: extraction diverges on tiny trace", w)
		}
	}
	if v := AnalyzeParallel(tr, 64); v != Analyze(tr) {
		t.Fatal("verdict diverges with 64 workers on a one-file trace")
	}
}

// TestParallelManySmallFilesStress floods the engine with a many-file,
// many-rank trace and re-runs the full parallel sweep repeatedly. Run with
// -race (CI does) this doubles as the data-race gate for the shared
// read-only FileAccesses slices.
func TestParallelManySmallFilesStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const ranks = 16
	tr := &recorder.Trace{Meta: recorder.Meta{App: "stress", Ranks: ranks},
		PerRank: make([][]recorder.Record, ranks)}
	for r := 0; r < ranks; r++ {
		var rs []recorder.Record
		ts := uint64(1)
		emit := func(fn recorder.Func, path string, args ...int64) {
			rs = append(rs, recorder.Record{Rank: int32(r), Layer: recorder.LayerPOSIX,
				Func: fn, TStart: ts, TEnd: ts + 1, Path: path, Args: args})
			ts += 2
		}
		for f := 0; f < 40; f++ {
			// Half private files, half shared across all ranks.
			path := "/pp/f" + string(rune('a'+r%26)) + string(rune('a'+f%26))
			if f%2 == 0 {
				path = "/shared/f" + string(rune('a'+f%26))
			}
			fd := int64(100 + f)
			emit(recorder.FuncOpen, path, int64(recorder.OCreat|recorder.ORdwr), 0o644, fd)
			n := int64(1 + rng.Intn(64))
			emit(recorder.FuncPwrite, "", fd, n, int64(rng.Intn(128)), n)
			if rng.Intn(2) == 0 {
				emit(recorder.FuncPread, "", fd, n, int64(rng.Intn(128)), n)
			}
			emit(recorder.FuncClose, "", fd)
		}
		tr.PerRank[r] = rs
	}

	fas := Extract(tr)
	if len(fas) < 40 {
		t.Fatalf("stress trace only has %d files", len(fas))
	}
	wantVerdict := Analyze(tr)
	wantByFile, wantSig := AnalyzeConflicts(tr, pfs.Session)
	wantCensus := MetadataCensus(tr)
	for iter := 0; iter < 5; iter++ {
		for _, w := range []int{4, 8} {
			if got := ExtractParallel(tr, w); !reflect.DeepEqual(fas, got) {
				t.Fatalf("iter %d w=%d: extraction diverges", iter, w)
			}
			byFile, sig := AnalyzeConflictsParallel(tr, pfs.Session, w)
			if !reflect.DeepEqual(wantByFile, byFile) || sig != wantSig {
				t.Fatalf("iter %d w=%d: session conflicts diverge", iter, w)
			}
			if got := AnalyzeParallel(tr, w); got != wantVerdict {
				t.Fatalf("iter %d w=%d: verdict diverges", iter, w)
			}
			if got := MetadataCensusParallel(tr, w); !reflect.DeepEqual(wantCensus, got) {
				t.Fatalf("iter %d w=%d: census diverges", iter, w)
			}
		}
	}
}
