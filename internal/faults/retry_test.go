package faults

// Satellite regression tests for the retry/backoff machinery the WAL
// drainer leans on: the injector's transient-error accounting must be
// deterministic per rank for a fixed seed even when ranks intercept
// concurrently, and the WAL's retry backoff must be a pure function of
// (seed, attempt) with jitter inside its documented ±25% envelope.

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/pfs"
	"repro/internal/wal"
)

// driveInjector performs a fixed per-rank operation program against inj with
// one goroutine per rank, modelling a retry loop: every transient answer is
// retried (Attempt > 0) until the injector lets the operation through.
// Returns the per-rank count of transient answers observed.
func driveInjector(inj *Injector, ranks, opsPerRank int) []int {
	retries := make([]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerRank; i++ {
				op := pfs.OpInfo{Kind: pfs.OpWrite, Rank: r, Path: "/f",
					Off: int64(i) * 64, Len: 64, Now: uint64(10 + 10*i)}
				act := inj.Intercept(op)
				for attempt := 1; act.Transient; attempt++ {
					retries[r]++
					op.Attempt = attempt
					act = inj.Intercept(op)
				}
			}
		}(r)
	}
	wg.Wait()
	return retries
}

// TestInjectorDeterministicUnderConcurrentRanks: for a fixed seed, the
// per-rank fault stream (fired events and transient retry counts) is
// identical across runs even though ranks race into Intercept — the
// injector keys its accounting by (rank, class, nth op), never by global
// arrival order.
func TestInjectorDeterministicUnderConcurrentRanks(t *testing.T) {
	const (
		ranks = 8
		ops   = 12
		seed  = 42
	)
	sched := Generate(seed, GenOptions{
		Ranks: ranks,
		Kinds: []Kind{TransientError, TornWrite, DelayedPublish},
		Count: 12,
		// Every N within the per-rank program so nothing is suppressed.
		MaxNth: ops,
	})

	type outcome struct {
		events  map[int][]Event
		retries []int
		fired   int
	}
	run := func() outcome {
		inj := NewInjector(sched)
		retries := driveInjector(inj, ranks, ops)
		return outcome{events: inj.EventsByRank(), retries: retries, fired: inj.Fired()}
	}
	first := run()
	if first.fired == 0 {
		t.Fatalf("schedule %v fired nothing; the determinism check is vacuous", sched.Injections)
	}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if got.fired != first.fired {
			t.Fatalf("trial %d fired %d faults, first run fired %d", trial, got.fired, first.fired)
		}
		if !reflect.DeepEqual(got.retries, first.retries) {
			t.Fatalf("trial %d transient retries %v, first run %v", trial, got.retries, first.retries)
		}
		if !reflect.DeepEqual(got.events, first.events) {
			t.Fatalf("trial %d per-rank events diverged:\n%v\nvs\n%v", trial, got.events, first.events)
		}
	}
}

// TestRetryBackoffJitterWithinBounds: wal.Backoff (what the WAL drainer
// sleeps between transient retries) stays within ±25% of the capped
// geometric nominal, and concurrent callers — the drainer goroutine and a
// foreground barrier can both retry — see identical delays for a fixed
// seed.
func TestRetryBackoffJitterWithinBounds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		b := wal.Backoff{BaseNS: 1_000, Multiplier: 2, CapNS: 64_000, Seed: seed}
		nominal := uint64(1_000)
		for attempt := 0; attempt < 16; attempt++ {
			d := b.Delay(attempt)
			lo, hi := nominal-nominal/4, nominal+nominal/4
			if d < lo || d > hi {
				t.Errorf("seed %d attempt %d: delay %d outside [%d, %d] (nominal %d)",
					seed, attempt, d, lo, hi, nominal)
			}
			if nominal < 64_000 {
				nominal *= 2
				if nominal > 64_000 {
					nominal = 64_000
				}
			}
		}
	}

	// Concurrency: racing callers must not perturb the sequence.
	b := wal.Backoff{BaseNS: 1_000, Multiplier: 2, CapNS: 64_000, Seed: 7}
	want := make([]uint64, 16)
	for i := range want {
		want[i] = b.Delay(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range want {
				if d := b.Delay(i); d != want[i] {
					t.Errorf("concurrent Delay(%d) = %d, want %d", i, d, want[i])
				}
			}
		}()
	}
	wg.Wait()
}
