// Package mpi is a deterministic simulated MPI runtime. Each rank runs in
// its own goroutine; point-to-point messages and collectives move both data
// and *logical time*: a receiver's clock advances to at least the sender's
// clock plus the message cost, and a collective releases every participant
// at the same logical instant (the max of the arrival clocks plus the
// collective's cost). The resulting per-rank timestamp streams are
// consistent with the happens-before order of the program — the property
// the paper's conflict analysis depends on (Section 5.2).
//
// Every call emits an MPI-layer trace record carrying enough matching
// information (peer/tag/sequence numbers) for the analyzer to reconstruct
// the happens-before graph from the trace alone.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/recorder"
	"repro/internal/sim"
)

// Op is a reduction operator.
type Op int

const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic("mpi: unknown op")
}

// World is the shared state of a simulated MPI job (one communicator,
// MPI_COMM_WORLD).
type World struct {
	topo sim.Topology
	cost sim.CostModel

	mu       sync.Mutex
	queues   map[p2pKey]chan message
	departed map[int]chan struct{} // closed when a rank detaches
	rv       *rendezvous
	collSeq  int64 // sequence number of the next collective
}

type p2pKey struct {
	src, dst, tag int
}

type message struct {
	clock uint64
	data  []byte
}

// NewWorld creates the shared MPI state for a topology.
func NewWorld(topo sim.Topology, cost sim.CostModel) *World {
	w := &World{
		topo:     topo,
		cost:     cost,
		queues:   make(map[p2pKey]chan message),
		departed: make(map[int]chan struct{}),
	}
	w.rv = newRendezvous(topo.Ranks)
	return w
}

// departSignal returns the channel closed when rank detaches.
func (w *World) departSignal(rank int) chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.departed[rank]
	if !ok {
		ch = make(chan struct{})
		w.departed[rank] = ch
	}
	return ch
}

// markDeparted records a rank's departure, returning false if it had
// already departed.
func (w *World) markDeparted(rank int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.departed[rank]
	if !ok {
		ch = make(chan struct{})
		w.departed[rank] = ch
	}
	select {
	case <-ch:
		return false
	default:
		close(ch)
		return true
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.Ranks }

// Topology returns the rank/node layout.
func (w *World) Topology() sim.Topology { return w.topo }

func (w *World) queue(k p2pKey) chan message {
	w.mu.Lock()
	defer w.mu.Unlock()
	q, ok := w.queues[k]
	if !ok {
		q = make(chan message, 4096)
		w.queues[k] = q
	}
	return q
}

// Proc is one rank's endpoint into the world.
type Proc struct {
	world  *World
	rank   int
	clock  *sim.Clock
	tracer *recorder.RankTracer
}

// NewProc creates rank's endpoint. The clock and tracer are shared with the
// other layers of that rank's I/O stack.
func NewProc(w *World, rank int, clock *sim.Clock, tracer *recorder.RankTracer) *Proc {
	if rank < 0 || rank >= w.topo.Ranks {
		panic(fmt.Sprintf("mpi: rank %d out of range", rank))
	}
	return &Proc{world: w, rank: rank, clock: clock, tracer: tracer}
}

// Rank returns this process's rank in MPI_COMM_WORLD.
func (p *Proc) Rank() int { return p.rank }

// Size returns the communicator size.
func (p *Proc) Size() int { return p.world.topo.Ranks }

// Node returns the compute node hosting this rank.
func (p *Proc) Node() int { return p.world.topo.NodeOf(p.rank) }

// NodeOfRank returns the compute node hosting an arbitrary rank.
func (p *Proc) NodeOfRank(r int) int { return p.world.topo.NodeOf(r) }

// Nodes returns the number of compute nodes in the job.
func (p *Proc) Nodes() int { return p.world.topo.Nodes() }

func (p *Proc) emit(fn recorder.Func, ts uint64, args ...int64) {
	p.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerMPI,
		Func:   fn,
		TStart: ts,
		TEnd:   p.clock.Stamp(),
		Args:   args,
	})
}

// Send transmits data to rank dst with the given tag (eager/buffered send:
// the sender does not wait for the receiver).
func (p *Proc) Send(dst, tag int, data []byte) {
	ts := p.clock.Stamp()
	q := p.world.queue(p2pKey{src: p.rank, dst: dst, tag: tag})
	sendClock := p.clock.Now()
	q <- message{clock: sendClock, data: append([]byte(nil), data...)}
	p.clock.Advance(p.world.cost.MsgLatency / 2) // local injection overhead
	p.emit(recorder.FuncMPISend, ts, int64(dst), int64(tag), int64(len(data)))
}

// Recv receives the next message from rank src with the given tag, blocking
// until one arrives. The local clock advances to at least the sender's send
// time plus the transfer cost (the happens-before edge).
// A Recv on a departed (crashed/detached) sender
// returns nil after draining anything the sender queued before dying, so a
// surviving rank is never wedged on a dead peer.
func (p *Proc) Recv(src, tag int) []byte {
	ts := p.clock.Stamp()
	q := p.world.queue(p2pKey{src: src, dst: p.rank, tag: tag})
	var m message
	var ok bool
	select {
	case m = <-q:
		ok = true
	default:
		select {
		case m = <-q:
			ok = true
		case <-p.world.departSignal(src):
			// Dead peer: take a message it sent before dying, if any.
			select {
			case m = <-q:
				ok = true
			default:
			}
		}
	}
	if ok {
		p.clock.MergeAtLeast(m.clock + p.world.cost.MsgCost(int64(len(m.data))))
	}
	p.clock.Advance(p.world.cost.MsgLatency / 2)
	p.emit(recorder.FuncMPIRecv, ts, int64(src), int64(tag), int64(len(m.data)))
	return m.data
}

// Detach removes this rank from the job: current and future collective
// rounds complete without it, and peers blocked in Recv on it return nil.
// The harness detaches a rank whose body ends early (crash fault, I/O
// error, panic) so surviving ranks are not wedged at their next collective.
// Idempotent; must be called from outside any collective.
func (p *Proc) Detach() {
	if p.world.markDeparted(p.rank) {
		p.world.rv.depart()
	}
}

// collective runs one rendezvous: deposit data, wait for all ranks, merge
// clocks, and return the completed round. bytes is the per-rank payload size
// used for cost accounting.
func (p *Proc) collective(fn recorder.Func, root int, data []byte, bytes int64) *round {
	ts := p.clock.Stamp()
	r := p.world.rv.arrive(p.rank, p.clock.Now(), data)
	cost := p.world.cost.BarrierCost + uint64(bytes)*p.world.cost.CollPerByte
	p.clock.MergeAtLeast(r.maxClock)
	p.clock.Advance(cost)
	p.emit(fn, ts, int64(root), bytes, r.seq)
	return r
}

// Barrier blocks until every rank arrives; all ranks leave at the same
// logical time.
func (p *Proc) Barrier() {
	p.collective(recorder.FuncMPIBarrier, -1, nil, 0)
}

// Bcast distributes root's data to every rank and returns it.
func (p *Proc) Bcast(root int, data []byte) []byte {
	r := p.collective(recorder.FuncMPIBcast, root, data, int64(len(data)))
	return append([]byte(nil), r.slots[root]...)
}

// Gather collects every rank's data at root. Root receives a slice indexed
// by rank; other ranks receive nil.
func (p *Proc) Gather(root int, data []byte) [][]byte {
	r := p.collective(recorder.FuncMPIGather, root, data, int64(len(data)))
	if p.rank != root {
		return nil
	}
	return copySlots(r.slots)
}

// Allgather collects every rank's data at every rank.
func (p *Proc) Allgather(data []byte) [][]byte {
	r := p.collective(recorder.FuncMPIAllgather, -1, data, int64(len(data)))
	return copySlots(r.slots)
}

// Scatter distributes parts[i] from root to rank i. Non-root ranks pass nil
// parts.
func (p *Proc) Scatter(root int, parts [][]byte) []byte {
	var mine []byte
	var size int64
	if p.rank == root {
		if len(parts) != p.Size() {
			panic("mpi: Scatter needs one part per rank")
		}
		for _, pt := range parts {
			size += int64(len(pt))
		}
	}
	r := p.collectiveScatter(root, parts, size)
	mine = append([]byte(nil), r.scatter[p.rank]...)
	return mine
}

func (p *Proc) collectiveScatter(root int, parts [][]byte, bytes int64) *round {
	ts := p.clock.Stamp()
	r := p.world.rv.arriveScatter(p.rank, p.clock.Now(), root, parts)
	cost := p.world.cost.BarrierCost + uint64(bytes)*p.world.cost.CollPerByte
	p.clock.MergeAtLeast(r.maxClock)
	p.clock.Advance(cost)
	p.emit(recorder.FuncMPIScatter, ts, int64(root), bytes, r.seq)
	return r
}

// Reduce combines every rank's value with op; root gets the result, other
// ranks get 0.
func (p *Proc) Reduce(root int, value int64, op Op) int64 {
	r := p.collective(recorder.FuncMPIReduce, root, encodeInt64(value), 8)
	if p.rank != root {
		return 0
	}
	return reduceSlots(r.slots, op)
}

// Allreduce combines every rank's value with op; every rank gets the result.
func (p *Proc) Allreduce(value int64, op Op) int64 {
	r := p.collective(recorder.FuncMPIAllreduce, -1, encodeInt64(value), 8)
	return reduceSlots(r.slots, op)
}

// Alltoall sends parts[i] to rank i and returns what each rank sent here.
func (p *Proc) Alltoall(parts [][]byte) [][]byte {
	if len(parts) != p.Size() {
		panic("mpi: Alltoall needs one part per rank")
	}
	var bytes int64
	for _, pt := range parts {
		bytes += int64(len(pt))
	}
	ts := p.clock.Stamp()
	r := p.world.rv.arriveAlltoall(p.rank, p.clock.Now(), parts)
	cost := p.world.cost.BarrierCost + uint64(bytes)*p.world.cost.CollPerByte
	p.clock.MergeAtLeast(r.maxClock)
	p.clock.Advance(cost)
	p.emit(recorder.FuncMPIAlltoall, ts, -1, bytes, r.seq)
	out := make([][]byte, p.Size())
	for src := 0; src < p.Size(); src++ {
		out[src] = append([]byte(nil), r.alltoall[src][p.rank]...)
	}
	return out
}

// Compute advances the local clock by the cost model's per-step compute
// time scaled by units, emitting no trace record (computation is not I/O).
func (p *Proc) Compute(units int) {
	if units <= 0 {
		units = 1
	}
	p.clock.Advance(uint64(units) * p.world.cost.LocalCompute)
}

// Clock exposes the rank's clock (used by the I/O layers sharing it).
func (p *Proc) Clock() *sim.Clock { return p.clock }

func copySlots(slots [][]byte) [][]byte {
	out := make([][]byte, len(slots))
	for i, s := range slots {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

func reduceSlots(slots [][]byte, op Op) int64 {
	acc := decodeInt64(slots[0])
	for _, s := range slots[1:] {
		acc = op.apply(acc, decodeInt64(s))
	}
	return acc
}

func encodeInt64(v int64) []byte {
	b := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

func decodeInt64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8 && i < len(b); i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}
