package pfs

import "repro/internal/obs"

// Telemetry for the simulated PFS data path, on the process-wide obs
// registry. Instruments are hoisted into package vars so the hot path under
// fs.mu is a handful of atomic adds (near-free no-ops when the registry is
// disabled — see internal/obs). Latency histograms record *simulated* cost
// in nanoseconds, so their contents are deterministic functions of the run,
// not of host scheduling.
//
// Naming (DESIGN.md §9): pfs.op.<op>.{count,cost_ns}, pfs.bytes.{read,
// written}, pfs.op.publish.*, pfs.visibility.*, pfs.fault.<action>.
var (
	opCounters = [...]*obs.Counter{
		OpWrite:  obs.Default().Counter("pfs.op.write.count"),
		OpRead:   obs.Default().Counter("pfs.op.read.count"),
		OpCommit: obs.Default().Counter("pfs.op.commit.count"),
		OpClose:  obs.Default().Counter("pfs.op.close.count"),
	}
	opCost = [...]*obs.Histogram{
		OpWrite:  obs.Default().Histogram("pfs.op.write.cost_ns"),
		OpRead:   obs.Default().Histogram("pfs.op.read.cost_ns"),
		OpCommit: obs.Default().Histogram("pfs.op.commit.cost_ns"),
		OpClose:  obs.Default().Histogram("pfs.op.close.cost_ns"),
	}
	bytesReadCounter    = obs.Default().Counter("pfs.bytes.read")
	bytesWrittenCounter = obs.Default().Counter("pfs.bytes.written")

	publishBatches = obs.Default().Counter("pfs.op.publish.count")
	publishExtents = obs.Default().Counter("pfs.op.publish.extents")
	publishBatch   = obs.Default().Histogram("pfs.op.publish.batch_extents")
	publishDelay   = obs.Default().Histogram("pfs.op.publish.delay_ns")

	// Visibility-wait gauges, per consistency model: the high-water mark of
	// how far a reader was from the strong view. For Eventual the value is
	// the remaining propagation delay of a hidden extent (simulated ns);
	// for Commit/Session it is the age of published-but-hidden data at read
	// time (ns since its publish). Strong never hides published data, so
	// its gauge stays zero by construction.
	visWait = [...]*obs.Gauge{
		Strong:   obs.Default().Gauge("pfs.visibility.wait_ns.strong"),
		Commit:   obs.Default().Gauge("pfs.visibility.wait_ns.commit"),
		Session:  obs.Default().Gauge("pfs.visibility.wait_ns.session"),
		Eventual: obs.Default().Gauge("pfs.visibility.wait_ns.eventual"),
	}
	staleReadCounters = [...]*obs.Counter{
		Strong:   obs.Default().Counter("pfs.visibility.stale_reads.strong"),
		Commit:   obs.Default().Counter("pfs.visibility.stale_reads.commit"),
		Session:  obs.Default().Counter("pfs.visibility.stale_reads.session"),
		Eventual: obs.Default().Counter("pfs.visibility.stale_reads.eventual"),
	}

	// Ack-to-visible lag, per consistency model: host wall-clock nanoseconds
	// from a WAL write's acknowledgement (local append+fsync returned) to
	// the drainer's publish completing against this file system — the real
	// ack-vs-durable gap of the paper's relaxed-semantics argument, observed
	// live by the WAL drain loop (internal/wal) via ObserveVisibilityLag.
	visLag = [...]*obs.Histogram{
		Strong:   obs.Default().Histogram("pfs.visibility_lag.strong"),
		Commit:   obs.Default().Histogram("pfs.visibility_lag.commit"),
		Session:  obs.Default().Histogram("pfs.visibility_lag.session"),
		Eventual: obs.Default().Histogram("pfs.visibility_lag.eventual"),
	}

	retryCounter     = obs.Default().Counter("pfs.retry.attempts")
	transientCounter = obs.Default().Counter("pfs.retry.exhausted")

	// historyEvents counts operations delivered to a registered
	// HistoryRecorder (the consistency checker's input stream).
	historyEvents = obs.Default().Counter("pfs.history.events")

	// Fault-action fire counts, one per FaultAction perturbation, counted
	// at the interception point itself so every injector implementation is
	// covered (internal/faults adds per-Kind tallies on top).
	faultCrashBefore = obs.Default().Counter("pfs.fault.crash_before")
	faultCrashAfter  = obs.Default().Counter("pfs.fault.crash_after")
	faultTorn        = obs.Default().Counter("pfs.fault.torn_write")
	faultDropCommit  = obs.Default().Counter("pfs.fault.drop_commit")
	faultDelay       = obs.Default().Counter("pfs.fault.publish_delay")
	faultReorder     = obs.Default().Counter("pfs.fault.reorder_publish")
	faultTransient   = obs.Default().Counter("pfs.fault.transient")
	faultIntercepts  = obs.Default().Counter("pfs.fault.intercepts")
)

// Flight-recorder event classes (obs.Flight). Interned once here so the
// data path records small integers, never strings. Op begin is recorded at
// the interception point (every op passes it, including ones a fault then
// kills); op end at the completion tally.
var (
	flightOpBegin = [...]obs.FlightClass{
		OpWrite:  obs.FlightClassFor("pfs.write.begin"),
		OpRead:   obs.FlightClassFor("pfs.read.begin"),
		OpCommit: obs.FlightClassFor("pfs.commit.begin"),
		OpClose:  obs.FlightClassFor("pfs.close.begin"),
	}
	flightOpEnd = [...]obs.FlightClass{
		OpWrite:  obs.FlightClassFor("pfs.write.end"),
		OpRead:   obs.FlightClassFor("pfs.read.end"),
		OpCommit: obs.FlightClassFor("pfs.commit.end"),
		OpClose:  obs.FlightClassFor("pfs.close.end"),
	}
	flightFaultFired = obs.FlightClassFor("pfs.fault.fired")
)

// ObserveVisibilityLag records one WAL-routed write's ack-to-visible lag
// (host wall ns) under the consistency model that governed it. Exported
// for internal/wal — the drainer is the only place both endpoints of the
// lag are known.
func ObserveVisibilityLag(sem Semantics, ns int64) {
	visLag[sem].Observe(ns)
}

// observeOp tallies one completed client data-path operation and its
// simulated cost.
func observeOp(kind OpKind, rank int, cost uint64) {
	opCounters[kind].Inc()
	opCost[kind].Observe(int64(cost))
	obs.Flight().Record(flightOpEnd[kind], int32(rank), 0, int64(cost), 0)
}

// observeFaultAction counts the perturbations an injector requested.
func observeFaultAction(op OpInfo, act FaultAction) {
	if act == (FaultAction{}) {
		return
	}
	obs.Flight().Record(flightFaultFired, int32(op.Rank), 0, op.Off, op.Len)
	if act.CrashBefore {
		faultCrashBefore.Inc()
	}
	if act.CrashAfter {
		faultCrashAfter.Inc()
	}
	if act.Torn {
		faultTorn.Inc()
	}
	if act.DropCommit {
		faultDropCommit.Inc()
	}
	if act.PublishDelay > 0 {
		faultDelay.Inc()
	}
	if act.ReorderPublish {
		faultReorder.Inc()
	}
	if act.Transient {
		faultTransient.Inc()
	}
}
