// Package recorder is the in-simulation analogue of the multi-level I/O
// tracer Recorder used by the paper (Wang et al., IPDPSW 2020). Each I/O
// layer (POSIX, MPI, MPI-IO, HDF5, NetCDF, ADIOS, Silo) emits one Record per
// intercepted call with entry/exit timestamps, the function identity and its
// integer arguments — everything the paper's Section 5 analysis consumes,
// and nothing more (no buffer contents, no simulator internals).
package recorder

import "fmt"

// Layer identifies which level of the I/O stack produced a record.
type Layer uint8

const (
	LayerPOSIX Layer = iota
	LayerMPI         // MPI point-to-point and collective communication
	LayerMPIIO
	LayerHDF5
	LayerNetCDF
	LayerADIOS
	LayerSilo
	LayerApp // calls issued directly by application code
	layerCount
)

var layerNames = [...]string{
	LayerPOSIX:  "POSIX",
	LayerMPI:    "MPI",
	LayerMPIIO:  "MPI-IO",
	LayerHDF5:   "HDF5",
	LayerNetCDF: "NetCDF",
	LayerADIOS:  "ADIOS",
	LayerSilo:   "Silo",
	LayerApp:    "APP",
}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer#%d", int(l))
}

// NumLayers returns the number of defined layers.
func NumLayers() int { return int(layerCount) }

// Record is one traced call.
//
// Argument conventions (indices into Args), mirroring how a real tracer
// stores call parameters and return values:
//
//	open/creat:        Path; Args = [flags, mode, retFD]
//	close:             Args = [fd]
//	read/write:        Args = [fd, count, retBytes]
//	pread/pwrite:      Args = [fd, count, offset, retBytes]
//	lseek/fseek:       Args = [fd, offset, whence, retOffset]
//	fopen:             Path; Args = [flags, 0, retFD]      (mode string mapped to open flags)
//	fread/fwrite:      Args = [fd, size, nmemb, retBytes]
//	fsync/fdatasync:   Args = [fd]
//	fflush/fclose:     Args = [fd]
//	ftruncate:         Args = [fd, length]
//	truncate:          Path; Args = [length]
//	fstat/fileno:      Args = [fd]
//	stat/lstat/access/unlink/mkdir/...: Path
//	rename:            Path = old path (new path in Path2)
//	MPI_Send/Recv:     Args = [peer, tag, bytes]
//	MPI collectives:   Args = [root, bytes, seq]            (root = -1 if rootless)
//	MPI_File_open:     Path; Args = [amode, retFH]
//	MPI_File_*_at*:    Args = [fh, count, offset]
//	MPI_File_read/write(_all): Args = [fh, count]
//	MPI_File_set_view: Args = [fh, disp, blocklen, stride]
//	H5*/nc_*/adios2_*/DB*: Path where applicable; Args library-specific
//
// TStart/TEnd are local-clock stamps (skew included) until the trace is
// aligned; see Trace.Align.
type Record struct {
	Rank   int32
	Layer  Layer
	Func   Func
	TStart uint64
	TEnd   uint64
	Path   string
	Path2  string // second path operand (rename, link, symlink)
	Args   []int64
}

// Arg returns Args[i], or 0 if absent — convenient for analyzers that must
// tolerate short records.
func (r *Record) Arg(i int) int64 {
	if i < 0 || i >= len(r.Args) {
		return 0
	}
	return r.Args[i]
}

func (r Record) String() string {
	return fmt.Sprintf("[r%d %s %s t=%d..%d path=%q args=%v]",
		r.Rank, r.Layer, r.Func, r.TStart, r.TEnd, r.Path, r.Args)
}

// IsDataOp reports whether the record is a POSIX-layer data operation
// (a read or write of file bytes) — the inputs to overlap detection.
func (r *Record) IsDataOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	switch r.Func {
	case FuncRead, FuncWrite, FuncPread, FuncPwrite, FuncReadv, FuncWritev,
		FuncFread, FuncFwrite:
		return true
	}
	return false
}

// IsWriteOp reports whether the record writes file bytes at the POSIX layer.
func (r *Record) IsWriteOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	switch r.Func {
	case FuncWrite, FuncPwrite, FuncWritev, FuncFwrite:
		return true
	}
	return false
}

// IsCommitOp reports whether the record acts as a "commit" under commit
// consistency semantics. Per the paper (§6.3, footnote 2): fsync,
// fdatasync, fflush, fclose or close.
func (r *Record) IsCommitOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	switch r.Func {
	case FuncFsync, FuncFdatasync, FuncFflush, FuncFclose, FuncClose:
		return true
	}
	return false
}

// IsOpenOp reports whether the record opens a file at the POSIX layer.
func (r *Record) IsOpenOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	switch r.Func {
	case FuncOpen, FuncCreat, FuncFopen, FuncTmpfile:
		return true
	}
	return false
}

// IsCloseOp reports whether the record closes a file at the POSIX layer.
func (r *Record) IsCloseOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	return r.Func == FuncClose || r.Func == FuncFclose
}

// IsMetadataOp reports whether the record is one of the POSIX metadata /
// utility operations the paper monitors in Section 6.4 (footnote 3).
func (r *Record) IsMetadataOp() bool {
	if r.Layer != LayerPOSIX {
		return false
	}
	switch r.Func {
	case FuncMmap, FuncMsync, FuncStat, FuncLstat, FuncFstat, FuncGetcwd,
		FuncMkdir, FuncRmdir, FuncChdir, FuncLink, FuncUnlink, FuncSymlink,
		FuncReadlink, FuncRename, FuncChmod, FuncChown, FuncUtime,
		FuncOpendir, FuncReaddir, FuncClosedir, FuncMknod, FuncFcntl,
		FuncDup, FuncDup2, FuncPipe, FuncMkfifo, FuncUmask, FuncFileno,
		FuncAccess, FuncFaccessat, FuncTmpfile, FuncRemove, FuncTruncate,
		FuncFtruncate:
		return true
	}
	return false
}

// Open flag bits used in records (subset of POSIX <fcntl.h>, with the same
// conventional values so traces read naturally).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)
