package pfs_test

// The visibility property suite runs randomized schedules (generated and
// replayed by internal/pfs/pfstest) identically against several
// consistency models and checks cross-model relationships. It lives in the
// external test package because pfstest imports pfs.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/pfs"
	"repro/internal/pfs/pfstest"
)

func runSchedule(t *testing.T, sem pfs.Semantics, sched pfstest.Schedule) []pfstest.ReadResult {
	t.Helper()
	reads, err := pfstest.Run(pfs.New(pfs.Options{Semantics: sem}), sched)
	if err != nil {
		t.Fatalf("%v schedule run: %v\n%s", sem, err, pfstest.Format(sched))
	}
	return reads
}

// TestPropertyVisibilityHierarchy: for the same schedule, every read under
// a weaker model returns at most as many bytes as under a stronger one —
// strong sees at least as much data as commit, and commit at least as much
// as session. (Values may differ only where the weaker model legitimately
// returns older data; sizes are monotonic.)
func TestPropertyVisibilityHierarchy(t *testing.T) {
	base := pfstest.BaseSeed(t, 5)
	pfstest.Trials(t, base, 200, func(t *testing.T, rng *rand.Rand) {
		sched := pfstest.Generate(rng, pfstest.GenOptions{})
		strong := runSchedule(t, pfs.Strong, sched)
		commit := runSchedule(t, pfs.Commit, sched)
		session := runSchedule(t, pfs.Session, sched)
		if len(strong) != len(commit) || len(commit) != len(session) {
			t.Fatalf("read counts differ: strong %d, commit %d, session %d",
				len(strong), len(commit), len(session))
		}
		for i := range strong {
			if len(commit[i].Data) > len(strong[i].Data) {
				t.Fatalf("read %d: commit returned more bytes (%d) than strong (%d)\n%s",
					i, len(commit[i].Data), len(strong[i].Data), pfstest.Format(sched))
			}
			if len(session[i].Data) > len(commit[i].Data) {
				t.Fatalf("read %d: session returned more bytes (%d) than commit (%d)\n%s",
					i, len(session[i].Data), len(commit[i].Data), pfstest.Format(sched))
			}
		}
	})
}

// TestPropertyFullDisciplineEqualizesModels: when every write is followed
// by fsync + close and the reader reopens before reading (the strictest
// portable discipline), all three models return identical data.
func TestPropertyFullDisciplineEqualizesModels(t *testing.T) {
	base := pfstest.BaseSeed(t, 9)
	pfstest.Trials(t, base, 100, func(t *testing.T, rng *rand.Rand) {
		var sched pfstest.Schedule
		for i := 0; i < 5+rng.Intn(8); i++ {
			off := int64(rng.Intn(100))
			data := bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(30)+1)
			sched = append(sched,
				pfstest.Op{Kind: pfstest.OpWrite, Rank: 0, Off: off, Data: data},
				pfstest.Op{Kind: pfstest.OpCommit, Rank: 0},
				pfstest.Op{Kind: pfstest.OpReopen, Rank: 0},
				pfstest.Op{Kind: pfstest.OpReopen, Rank: 1},
				pfstest.Op{Kind: pfstest.OpRead, Rank: 1, Off: off, Len: 64},
			)
		}
		strong := runSchedule(t, pfs.Strong, sched)
		commit := runSchedule(t, pfs.Commit, sched)
		session := runSchedule(t, pfs.Session, sched)
		for i := range strong {
			if !bytes.Equal(strong[i].Data, commit[i].Data) || !bytes.Equal(strong[i].Data, session[i].Data) {
				t.Fatalf("read %d: models disagree under full discipline:\n strong %v\n commit %v\n session %v\n%s",
					i, strong[i].Data, commit[i].Data, session[i].Data, pfstest.Format(sched))
			}
		}
	})
}
