package recorder

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedStreams encodes a few representative rank streams so the fuzzer
// starts from valid wire format (the same bytes SaveDir writes) rather than
// discovering the magic by brute force.
func fuzzSeedStreams(f *testing.F) [][]byte {
	f.Helper()
	streams := [][]Record{
		nil, // empty stream
		{
			mkRecord(0, LayerPOSIX, FuncOpen, 1, 2, "/ckpt0001", int64(OCreat|OWronly), 0o644, 3),
			mkRecord(0, LayerPOSIX, FuncPwrite, 3, 9, "", 3, 4096, 0, 4096),
			mkRecord(0, LayerPOSIX, FuncFsync, 10, 30, "", 3),
			mkRecord(0, LayerPOSIX, FuncClose, 31, 32, "", 3),
		},
		{
			// Repeated paths exercise the string-table back references;
			// the HDF5 record exercises the layer byte and Path2.
			mkRecord(2, LayerHDF5, FuncH5Dwrite, 1, 90, "/data.h5"),
			mkRecord(2, LayerPOSIX, FuncStat, 2, 3, "/data.h5"),
			mkRecord(2, LayerPOSIX, FuncRename, 4, 5, "/data.h5"),
			mkRecord(2, LayerPOSIX, FuncWrite, 6, 7, "", 5, -1),
		},
	}
	var out [][]byte
	for i, rs := range streams {
		var buf bytes.Buffer
		if err := EncodeRankStream(&buf, i, rs); err != nil {
			f.Fatalf("encoding seed %d: %v", i, err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzLoadRecord is the decode-hardening gate: arbitrary bytes must
// either decode cleanly or return an error — never panic, never allocate
// absurdly from a forged header. Anything that does decode must survive an
// encode/decode round trip unchanged (the decoder accepts only canonical
// meaning, even if the wire encoding differs).
func FuzzLoadRecord(f *testing.F) {
	for _, seed := range fuzzSeedStreams(f) {
		f.Add(seed)
		// Truncations and corruptions of valid streams reach the deep
		// error paths (mid-record EOF, bad string refs) immediately.
		f.Add(seed[:len(seed)/2])
		if len(seed) > 10 {
			mut := bytes.Clone(seed)
			mut[9] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte("SEMFSTR1"))                             // header only
	f.Add([]byte("SEMFSTR2\x00\x00"))                     // wrong magic
	f.Add([]byte("SEMFSTR1\x00\xff\xff\xff\xff\xff\x7f")) // huge count
	f.Add([]byte("SEMFSTR1\xff\xff\xff\xff\xff\xff\x01")) // huge rank
	f.Add([]byte("SEMFSTR1\x00\x01\x00\x05\xff\xff\x7f")) // nonsense record

	f.Fuzz(func(t *testing.T, data []byte) {
		rank, records, err := DecodeRankStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRankStream(&buf, rank, records); err != nil {
			t.Fatalf("re-encoding decoded stream: %v", err)
		}
		rank2, records2, err := DecodeRankStream(&buf)
		if err != nil {
			t.Fatalf("decoding re-encoded stream: %v", err)
		}
		if rank2 != rank || len(records2) != len(records) {
			t.Fatalf("round trip changed shape: rank %d->%d, %d->%d records",
				rank, rank2, len(records), len(records2))
		}
		for i := range records {
			if !reflect.DeepEqual(records[i], records2[i]) {
				t.Fatalf("round trip changed record %d:\n%+v\n%+v", i, records[i], records2[i])
			}
		}
	})
}
