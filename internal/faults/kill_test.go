package faults

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/recorder"
)

// Fatal hits SIGKILL the process, so everything here arms thresholds the
// test never reaches; the kill-and-recover harness in internal/experiments
// exercises the fatal path in a re-exec'd child.

func TestArmKillPointsCounts(t *testing.T) {
	t.Cleanup(ResetKillPoints)
	ResetKillPoints()
	if err := ArmKillPoints("ckpt.append.torn:5, other.point:2"); err != nil {
		t.Fatalf("ArmKillPoints: %v", err)
	}
	Hit("ckpt.append.torn")
	Hit("ckpt.append.torn")
	Hit("unarmed.point")
	if got := KillPointHits("ckpt.append.torn"); got != 2 {
		t.Fatalf("KillPointHits = %d, want 2", got)
	}
	// Unarmed points still count once any arming happened — they are live
	// call sites, just not fatal ones.
	if got := KillPointHits("unarmed.point"); got != 1 {
		t.Fatalf("KillPointHits(unarmed) = %d, want 1", got)
	}
}

func TestHitWithoutArmingIsFree(t *testing.T) {
	t.Cleanup(ResetKillPoints)
	ResetKillPoints()
	Hit("anything")
	if got := KillPointHits("anything"); got != 0 {
		t.Fatalf("unarmed process counted hits: %d", got)
	}
}

func TestArmKillPointsRejectsBadSpecs(t *testing.T) {
	t.Cleanup(ResetKillPoints)
	for _, spec := range []string{"nocount", "point:", "point:0", "point:-1", "point:x"} {
		ResetKillPoints()
		if err := ArmKillPoints(spec); err == nil {
			t.Errorf("ArmKillPoints(%q) accepted", spec)
		}
	}
	ResetKillPoints()
	if err := ArmKillPoints(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestPFSOpKillPointsObserveDataPath(t *testing.T) {
	t.Cleanup(ResetKillPoints)
	ResetKillPoints()
	// Threshold far above anything the workload performs: the hook must
	// observe and count operations without killing.
	if err := ArmKillPoints("pfs.op.write:100000"); err != nil {
		t.Fatalf("ArmKillPoints: %v", err)
	}
	meta := recorder.Meta{App: "kill-test", Ranks: 2, PPN: 2, Seed: 1}
	res, err := harness.Run(harness.Config{Ranks: 2, PPN: 2, Seed: 1}, meta, func(c *harness.Ctx) error {
		fd, err := c.OS.Open("/k.dat", recorder.OCreat|recorder.OWronly, 0o644)
		if err != nil {
			return err
		}
		if _, err := c.OS.Pwrite(fd, make([]byte, 32), int64(c.Rank)*32); err != nil {
			return err
		}
		return c.OS.Close(fd)
	})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("rank error: %v", err)
	}
	if got := KillPointHits("pfs.op.write"); got < 2 {
		t.Fatalf("pfs.op.write hits = %d, want >= 2 (one write per rank)", got)
	}
	if got := KillPointHits("pfs.op.close"); got < 2 {
		t.Fatalf("pfs.op.close hits = %d, want >= 2", got)
	}
}
