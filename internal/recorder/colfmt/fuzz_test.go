package colfmt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/recorder"
)

// FuzzDecodeColumnar is the columnar decode-hardening gate, mirroring
// recorder.FuzzLoadRecord: arbitrary byte mutations of valid streams must
// never panic or read outside the input slice, and must either decode
// cleanly (surviving an encode/decode round trip) or return an error —
// a recorder.TruncatedError for missing bytes, a *CorruptError for damage —
// while preserving the valid block prefix. The lenient walk additionally
// must never yield more records than the header declared.
func FuzzDecodeColumnar(f *testing.F) {
	for i, recs := range [][]recorder.Record{
		nil,
		genStream(0, 5, 1),
		genStream(2, 100, 2),
	} {
		for _, per := range []int{0, 7} {
			var buf bytes.Buffer
			if err := EncodeStream(&buf, i, recs, EncodeOptions{BlockRecords: per}); err != nil {
				f.Fatalf("encoding seed: %v", err)
			}
			seed := buf.Bytes()
			f.Add(seed)
			f.Add(seed[:len(seed)/2])            // torn tail
			f.Add(seed[:len(seed)-trailerLen/2]) // torn trailer
			if len(seed) > 40 {
				mut := bytes.Clone(seed)
				mut[30] ^= 0xff // likely a block payload byte
				f.Add(mut)
				mut2 := bytes.Clone(seed)
				mut2[len(Magic)+3] ^= 0xff // frame header byte
				f.Add(mut2)
			}
		}
	}
	f.Add([]byte(Magic))                                  // header only
	f.Add([]byte("SEMFSCOL2\x00\x00"))                    // wrong magic
	f.Add([]byte(Magic + "\x00\xff\xff\xff\xff\x7f"))     // huge count
	f.Add([]byte(Magic + "\xff\xff\xff\xff\xff\x01"))     // huge rank
	f.Add([]byte(Magic + "\x00\x08\x01\xff\xff\xff\xff")) // nonsense frame

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		recs, merr := r.Materialize()
		if uint64(len(recs)) > uint64(r.Declared()) {
			t.Fatalf("decoded %d records, header declared %d", len(recs), r.Declared())
		}
		lr, lerr := NewReader(data)
		if lerr != nil {
			t.Fatalf("second open disagrees: %v", lerr)
		}
		sal, stats, _ := lr.MaterializeLenient()
		if len(sal) > r.Declared() || stats.Records != len(sal) {
			t.Fatalf("lenient decoded %d (stats %+v), declared %d", len(sal), stats, r.Declared())
		}
		// The strict walk's records are a prefix of some valid decode; the
		// lenient walk must preserve at least that prefix when nothing was
		// skipped mid-stream.
		if stats.Skipped == 0 && len(sal) < len(recs) {
			t.Fatalf("lenient (%d) kept less than strict (%d) with no skips", len(sal), len(recs))
		}
		if merr != nil {
			var te *recorder.TruncatedError
			var ce *CorruptError
			if !errors.As(merr, &te) && !errors.As(merr, &ce) {
				t.Fatalf("strict error is neither truncation nor corruption: %v", merr)
			}
			return
		}
		// Clean decode: must round-trip unchanged.
		var buf bytes.Buffer
		if err := EncodeStream(&buf, r.Rank(), recs, EncodeOptions{}); err != nil {
			t.Fatalf("re-encoding decoded stream: %v", err)
		}
		r2, err := NewReader(buf.Bytes())
		if err != nil {
			t.Fatalf("reopening re-encoded stream: %v", err)
		}
		recs2, err := r2.Materialize()
		if err != nil {
			t.Fatalf("decoding re-encoded stream: %v", err)
		}
		if r2.Rank() != r.Rank() || len(recs2) != len(recs) {
			t.Fatalf("round trip changed shape: rank %d->%d, %d->%d records",
				r.Rank(), r2.Rank(), len(recs), len(recs2))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("round trip changed record %d:\n%+v\n%+v", i, recs[i], recs2[i])
			}
		}
	})
}
