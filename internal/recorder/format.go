package recorder

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/storage"
)

// Binary trace format, one stream per rank:
//
//	magic "SEMFSTR1" (8 bytes)
//	rank (uvarint)
//	count (uvarint)
//	count records, each:
//	  layer (1 byte), func (uvarint)
//	  tstart (uvarint), tend delta from tstart (uvarint)
//	  path ref, path2 ref (see below)
//	  nargs (uvarint), args (varint each)
//
// Path references use a per-stream string table built on the fly: 0 means
// "no path", 1 means "new string follows (uvarint len + bytes)" and is
// assigned the next table index, and k >= 2 means table entry k-2.
const traceMagic = "SEMFSTR1"

// ErrTruncated reports a rank stream that ended mid-record — a crashed or
// torn-off writer. DecodeRankStream returns it alongside every record
// decoded before the cut, so callers can degrade gracefully instead of
// discarding the salvageable prefix (see LoadDirLenient).
var ErrTruncated = errors.New("recorder: trace stream truncated")

// TruncatedError is the concrete truncation error: it carries how many
// records the stream header declared and how many decoded before the cut, so
// salvage reporting can say exactly what was kept and what was dropped. It
// matches errors.Is(err, ErrTruncated).
type TruncatedError struct {
	Declared uint64 // records the header promised (0 if the cut precedes the header)
	Decoded  int    // records recovered before the cut
}

func (e *TruncatedError) Error() string {
	if e.Declared > 0 {
		return fmt.Sprintf("%v after %d records (%d of %d declared dropped)",
			ErrTruncated, e.Decoded, e.Dropped(), e.Declared)
	}
	return fmt.Sprintf("%v after %d records", ErrTruncated, e.Decoded)
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// Dropped returns how many declared records were lost to the cut (0 when the
// declared count is unknown).
func (e *TruncatedError) Dropped() int {
	if e.Declared > uint64(e.Decoded) {
		return int(e.Declared) - e.Decoded
	}
	return 0
}

// truncated reports whether err is a short-read condition (the stream ended
// before the declared content did).
func truncated(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// decodeFail wraps a mid-stream decode error, converting short reads into a
// TruncatedError with the salvage position (and, once the header has been
// read, the declared record count) attached.
func decodeFail(declared uint64, nrecords int, err error) error {
	if truncated(err) {
		return &TruncatedError{Declared: declared, Decoded: nrecords}
	}
	return err
}

// EncodeRankStream writes one rank's records to w.
func EncodeRankStream(w io.Writer, rank int, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	strTable := make(map[string]uint64)
	writeStr := func(s string) error {
		if s == "" {
			return writeUvarint(0)
		}
		if idx, ok := strTable[s]; ok {
			return writeUvarint(idx + 2)
		}
		strTable[s] = uint64(len(strTable))
		if err := writeUvarint(1); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := writeUvarint(uint64(rank)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(records))); err != nil {
		return err
	}
	for i := range records {
		r := &records[i]
		if err := bw.WriteByte(byte(r.Layer)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.Func)); err != nil {
			return err
		}
		if err := writeUvarint(r.TStart); err != nil {
			return err
		}
		if r.TEnd < r.TStart {
			return fmt.Errorf("recorder: record %d has TEnd < TStart", i)
		}
		if err := writeUvarint(r.TEnd - r.TStart); err != nil {
			return err
		}
		if err := writeStr(r.Path); err != nil {
			return err
		}
		if err := writeStr(r.Path2); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(r.Args))); err != nil {
			return err
		}
		for _, a := range r.Args {
			if err := writeVarint(a); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeRankStream reads one rank's records from r. On a short read it
// returns every record decoded before the cut together with an error
// wrapping ErrTruncated; on other corruption it likewise returns the valid
// prefix alongside the error. Strict callers treat any error as fatal;
// degraded-mode callers keep the salvaged records.
func DecodeRankStream(r io.Reader) (rank int, records []Record, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err = io.ReadFull(br, magic); err != nil {
		return 0, nil, fmt.Errorf("recorder: reading magic: %w", decodeFail(0, 0, err))
	}
	if string(magic) != traceMagic {
		return 0, nil, fmt.Errorf("recorder: bad magic %q", magic)
	}
	var strTable []string
	readStr := func() (string, error) {
		tag, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		switch {
		case tag == 0:
			return "", nil
		case tag == 1:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return "", err
			}
			if n > 1<<20 {
				return "", fmt.Errorf("recorder: string length %d too large", n)
			}
			b := make([]byte, n)
			if _, err := io.ReadFull(br, b); err != nil {
				return "", err
			}
			// Intern once: the table entry and the returned value share one
			// string, so each distinct path costs a single allocation.
			s := string(b)
			strTable = append(strTable, s)
			return s, nil
		default:
			idx := tag - 2
			if idx >= uint64(len(strTable)) {
				return "", fmt.Errorf("recorder: string ref %d out of table (%d entries)", idx, len(strTable))
			}
			return strTable[idx], nil
		}
	}

	urank, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, decodeFail(0, 0, err)
	}
	if urank > 1<<20 {
		return 0, nil, fmt.Errorf("recorder: rank %d out of range", urank)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return int(urank), nil, decodeFail(0, 0, err)
	}
	if count > 1<<30 {
		return 0, nil, fmt.Errorf("recorder: record count %d too large", count)
	}
	// The declared count is attacker-controlled until the stream is fully
	// read: preallocate a bounded amount and let append grow the rest, so a
	// forged header can't demand gigabytes up front.
	prealloc := count
	if prealloc > 4096 {
		prealloc = 4096
	}
	records = make([]Record, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		var rec Record
		rec.Rank = int32(urank)
		layer, err := br.ReadByte()
		if err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		rec.Layer = Layer(layer)
		fn, err := binary.ReadUvarint(br)
		if err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		rec.Func = Func(fn)
		if rec.TStart, err = binary.ReadUvarint(br); err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		dur, err := binary.ReadUvarint(br)
		if err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		rec.TEnd = rec.TStart + dur
		if rec.TEnd < rec.TStart {
			return int(urank), records, fmt.Errorf("recorder: record %d duration overflows", i)
		}
		if rec.Path, err = readStr(); err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		if rec.Path2, err = readStr(); err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		nargs, err := binary.ReadUvarint(br)
		if err != nil {
			return int(urank), records, decodeFail(count, len(records), err)
		}
		if nargs > 64 {
			return int(urank), records, fmt.Errorf("recorder: %d args too many", nargs)
		}
		if nargs > 0 {
			rec.Args = make([]int64, nargs)
			for j := range rec.Args {
				if rec.Args[j], err = binary.ReadVarint(br); err != nil {
					return int(urank), records, decodeFail(count, len(records), err)
				}
			}
		}
		records = append(records, rec)
	}
	return int(urank), records, nil
}

// SaveDir persists a trace as a directory: "trace.meta" (JSON) plus one
// "rank_NNNNN.rec" binary stream per rank — the same on-disk shape a
// per-process tracer produces on a real system.
func SaveDir(dir string, tr *Trace) error {
	return SaveDirOn(storage.OS(), dir, tr)
}

// SaveDirOn is SaveDir against an explicit storage backend (how semtrace's
// -backend flag lands traces on the object store).
func SaveDirOn(b storage.Backend, dir string, tr *Trace) error {
	if err := b.MkdirAll(dir); err != nil {
		return err
	}
	metaBytes, err := json.MarshalIndent(tr.Meta, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileOn(b, filepath.Join(dir, "trace.meta"), metaBytes); err != nil {
		return err
	}
	for rank, rs := range tr.PerRank {
		f, err := b.Open(filepath.Join(dir, rankFileName(rank)), storage.OCreate|storage.OWronly|storage.OTrunc, 0o644)
		if err != nil {
			return err
		}
		err = EncodeRankStream(f, rank, rs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("recorder: writing rank %d: %w", rank, err)
		}
	}
	return nil
}

// writeFileOn mirrors os.WriteFile on a backend: create/truncate, write,
// close (no fsync — same durability the pre-seam path offered).
func writeFileOn(b storage.Backend, path string, data []byte) error {
	f, err := b.Open(path, storage.OCreate|storage.OWronly|storage.OTrunc, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// LoadDir loads a trace previously written by SaveDir.
func LoadDir(dir string) (*Trace, error) {
	return LoadDirOn(storage.OS(), dir)
}

// LoadDirOn is LoadDir against an explicit storage backend. On an eventual
// backend it waits out the publish-visibility horizon before reading.
func LoadDirOn(b storage.Backend, dir string) (*Trace, error) {
	storage.Settle(b)
	metaBytes, err := b.ReadFile(filepath.Join(dir, "trace.meta"))
	if err != nil {
		return nil, err
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("recorder: parsing trace.meta: %w", err)
	}
	if meta.Ranks <= 0 {
		return nil, errors.New("recorder: trace.meta has no ranks")
	}
	tr := &Trace{Meta: meta, PerRank: make([][]Record, meta.Ranks)}
	for rank := 0; rank < meta.Ranks; rank++ {
		f, err := b.Open(filepath.Join(dir, rankFileName(rank)), storage.ORdonly, 0)
		if err != nil {
			return nil, err
		}
		gotRank, rs, derr := DecodeRankStream(f)
		cerr := f.Close()
		if derr != nil {
			return nil, fmt.Errorf("recorder: reading rank %d: %w", rank, derr)
		}
		if cerr != nil {
			return nil, cerr
		}
		if gotRank != rank {
			return nil, fmt.Errorf("recorder: file %s holds rank %d", rankFileName(rank), gotRank)
		}
		tr.PerRank[rank] = rs
	}
	return tr, nil
}

// RankFileName returns the per-rank stream file name ("rank_NNNNN.rec").
// Both trace formats share it — the magic bytes inside pick the decoder —
// so format-sniffing loaders (internal/recorder/colfmt) build paths with it.
func RankFileName(rank int) string {
	return fmt.Sprintf("rank_%05d.rec", rank)
}

func rankFileName(rank int) string { return RankFileName(rank) }

// Salvage reports how a degraded-mode load went: how many rank streams
// loaded fully, how many were truncated but partially recovered, and how
// many were unreadable, plus the record counts behind the analysis that
// follows. It is the "what survived" half of LoadDirLenient's contract.
type Salvage struct {
	Ranks      int // rank streams the metadata declares
	Full       int // streams decoded end-to-end
	Truncated  int // streams cut mid-record; valid prefix recovered
	Unreadable int // streams missing or corrupt beyond salvage
	Records    int // total records loaded
	Salvaged   int // records recovered from truncated/corrupt streams
	// Dropped counts records declared by damaged streams' headers but lost
	// to the cut (0 when a stream died before declaring its count).
	Dropped int
	// Blocks and BlocksDropped are the columnar formats' per-block
	// accounting (zero for v1 streams): column blocks decoded cleanly vs
	// corrupt blocks individually skipped mid-stream. Records behind a torn
	// tail are accounted in Dropped, not here — a cut hides how many blocks
	// it ate, while the header-declared count keeps the record loss exact.
	Blocks        int
	BlocksDropped int
	// Errs holds one error per degraded stream, wrapped with the file name.
	Errs []error
}

// Degraded reports whether anything less than a full load happened.
func (s *Salvage) Degraded() bool { return s.Truncated > 0 || s.Unreadable > 0 }

func (s *Salvage) String() string {
	out := fmt.Sprintf("salvage: %d/%d streams full, %d truncated, %d unreadable; %d records (%d salvaged, %d dropped)",
		s.Full, s.Ranks, s.Truncated, s.Unreadable, s.Records, s.Salvaged, s.Dropped)
	if s.BlocksDropped > 0 {
		out += fmt.Sprintf("; %d blocks kept, %d skipped", s.Blocks, s.BlocksDropped)
	}
	return out
}

// LoadDirLenient is the degraded-mode LoadDir: instead of aborting on the
// first truncated or corrupt rank stream, it keeps every record that decodes
// cleanly — the valid prefix of a truncated stream, nothing from an
// unreadable one — and reports what was lost in the Salvage. It fails only
// when the metadata is unusable or not a single record survives, so an
// analysis pipeline fed a damaged trace degrades instead of dying.
func LoadDirLenient(dir string) (*Trace, *Salvage, error) {
	return LoadDirLenientOn(storage.OS(), dir)
}

// LoadDirLenientOn is LoadDirLenient against an explicit storage backend.
func LoadDirLenientOn(b storage.Backend, dir string) (*Trace, *Salvage, error) {
	storage.Settle(b)
	metaBytes, err := b.ReadFile(filepath.Join(dir, "trace.meta"))
	if err != nil {
		return nil, nil, err
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, nil, fmt.Errorf("recorder: parsing trace.meta: %w", err)
	}
	if meta.Ranks <= 0 {
		return nil, nil, errors.New("recorder: trace.meta has no ranks")
	}
	tr := &Trace{Meta: meta, PerRank: make([][]Record, meta.Ranks)}
	sal := &Salvage{Ranks: meta.Ranks}
	degrade := func(rank int, n int, err error) {
		name := rankFileName(rank)
		if n > 0 {
			sal.Truncated++
			sal.Salvaged += n
		} else {
			sal.Unreadable++
		}
		var te *TruncatedError
		if errors.As(err, &te) {
			sal.Dropped += te.Dropped()
		}
		sal.Errs = append(sal.Errs, fmt.Errorf("%s: %w", name, err))
	}
	for rank := 0; rank < meta.Ranks; rank++ {
		f, err := b.Open(filepath.Join(dir, rankFileName(rank)), storage.ORdonly, 0)
		if err != nil {
			degrade(rank, 0, err)
			continue
		}
		gotRank, rs, derr := DecodeRankStream(f)
		if cerr := f.Close(); derr == nil {
			derr = cerr
		}
		if derr == nil && gotRank != rank {
			derr = fmt.Errorf("holds rank %d", gotRank)
			rs = nil // records belong to another rank; keeping them would lie
		}
		if derr != nil {
			degrade(rank, len(rs), derr)
		} else {
			sal.Full++
		}
		tr.PerRank[rank] = rs
		sal.Records += len(rs)
	}
	sal.observe()
	if sal.Records == 0 {
		return nil, sal, fmt.Errorf("recorder: %s: nothing salvageable", dir)
	}
	return tr, sal, nil
}
