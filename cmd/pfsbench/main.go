// Command pfsbench sweeps the simulated parallel file system across its
// four consistency models and several canonical HPC write workloads,
// reporting the simulated elapsed time and lock-manager traffic — the
// executable form of the paper's motivation: strict POSIX semantics impose
// per-operation lock round trips that relaxed-semantics PFSs avoid
// (Sections 1 and 3).
//
// Usage:
//
//	pfsbench -ranks 64 -ops 32
//	pfsbench -checkpoint ckptdir -resume   # replay cells a crashed run finished
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/ckpt"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/storage"

	// Live /metrics exporter behind the -serve-metrics flag.
	_ "repro/internal/obs/live"
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		ranks   = flag.Int("ranks", 64, "MPI ranks")
		ppn     = flag.Int("ppn", 8, "processes per node")
		block   = flag.Int64("block", 4096, "bytes per write")
		ops     = flag.Int("ops", 32, "writes per rank")
		ckptDir = flag.String("checkpoint", "", "journal completed cells to this directory (crash-safe)")
		resume  = flag.Bool("resume", false, "replay cells already journaled in -checkpoint instead of re-running them")
		useWAL  = flag.Bool("wal", false, "also run every cell with per-rank write-ahead-log acknowledgement (internal/wal)")
		spec    = flag.String("backend", "osdisk", "durable storage backend for -checkpoint state: osdisk | objstore[:delay=D,root=DIR] | flaky[:...]")
		tele    obs.CLIFlags
	)
	tele.Register(flag.CommandLine)
	flag.Parse()
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "pfsbench: -resume requires -checkpoint")
		return 2
	}
	backend, err := storage.ParseSpec(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfsbench: -backend:", err)
		return 2
	}
	backend = storage.NewRetry(backend, storage.RetryOptions{})
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "pfsbench:", err)
		return 2
	}
	if err := tele.Start(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pfsbench:", err)
		return 2
	}
	defer func() {
		if err := tele.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "pfsbench:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	var store *ckpt.Store
	if *ckptDir != "" {
		var err error
		store, err = ckpt.OpenOn(backend, *ckptDir, ckpt.Manifest{
			Kind:   "pfsbench",
			Ranks:  *ranks,
			PPN:    *ppn,
			Params: fmt.Sprintf("block=%d ops=%d", *block, *ops),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfsbench: -checkpoint:", err)
			return 1
		}
		defer store.Close()
	}

	walModes := []bool{false}
	if *useWAL {
		walModes = append(walModes, true)
	}
	var results []experiments.BenchResult
	for _, workload := range experiments.PFSBenchWorkloads() {
		for _, sem := range pfs.AllSemantics() {
			for _, withWAL := range walModes {
				key := workload + "/" + sem.String()
				if withWAL {
					key += "+wal"
				}
				if store != nil && *resume {
					if blob, ok := store.Lookup(key); ok {
						var r experiments.BenchResult
						if err := json.Unmarshal(blob, &r); err == nil {
							results = append(results, r)
							continue
						}
						// Undecodable cache entry: fall through and re-run.
					}
				}
				bench := experiments.PFSBench
				if withWAL {
					bench = experiments.PFSBenchWAL
				}
				r, err := bench(workload, sem, *ranks, *ppn, *block, *ops)
				if err != nil {
					fmt.Fprintln(os.Stderr, "pfsbench:", err)
					return 1
				}
				if store != nil {
					blob, err := json.Marshal(r)
					if err == nil {
						err = store.Append(key, blob)
					}
					if err != nil {
						fmt.Fprintln(os.Stderr, "pfsbench: checkpoint:", err)
						return 1
					}
				}
				results = append(results, r)
			}
		}
	}
	fmt.Print(experiments.PFSBenchTable(results))
	fmt.Println("\nShape to expect: strong pays one lock RPC per write (slowest on shared")
	fmt.Println("files, especially small strided writes); commit/session skip locking;")
	fmt.Println("file-per-process narrows the gap because there is no sharing to serialize.")
	return 0
}
