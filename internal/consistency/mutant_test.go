package consistency

import (
	"math/rand"
	"testing"

	"repro/internal/pfs"
	"repro/internal/pfs/pfstest"
)

// Mutation testing for the checker: each mutant is a deliberately weakened
// implementation of a consistency model — a real pfs configuration whose
// behavior is exactly "model X minus one clause" — and the spec for X must
// reject its histories with a counterexample naming the missing clause.
//
//	commit-without-pending-isolation:  a pfs that publishes at write time
//	    (Strong) pretending to be Commit — remote readers see uncommitted
//	    data.
//	strong-without-immediate-visibility: a pfs that buffers until close
//	    (Session) pretending to be Strong — writes are not readable at once.
//	session-without-close-visibility:  a pfs that publishes at fsync
//	    (Commit) pretending to be Session — data appears inside an open
//	    session without a close-to-open boundary.
//	eventual-with-unbounded-staleness: an Eventual pfs whose propagation
//	    delay exceeds the spec's bound — reads stay stale past the
//	    guarantee.
//	unordered-same-process:            pfs's BurstFS mode, which breaks
//	    program order among one process's own buffered writes.
type mutant struct {
	name   string
	impl   pfs.Options // the weakened implementation
	spec   pfs.Semantics
	delay  uint64 // spec staleness bound (eventual only)
	sched  pfstest.Schedule
	clause string
}

func mutants() []mutant {
	w := func(off int64, data string) pfstest.Op {
		return pfstest.Op{Kind: pfstest.OpWrite, Rank: 0, Off: off, Data: []byte(data)}
	}
	r := func(rank int, off int64) pfstest.Op {
		return pfstest.Op{Kind: pfstest.OpRead, Rank: rank, Off: off, Len: 64}
	}
	ms := []mutant{
		{
			name:   "commit-without-pending-isolation",
			impl:   pfs.Options{Semantics: pfs.Strong},
			spec:   pfs.Commit,
			sched:  pfstest.Schedule{w(0, "uncommitted"), r(1, 0)},
			clause: "commit-isolation",
		},
		{
			name:   "strong-without-immediate-visibility",
			impl:   pfs.Options{Semantics: pfs.Session},
			spec:   pfs.Strong,
			sched:  pfstest.Schedule{w(0, "hidden"), r(1, 0)},
			clause: "strong-read-latest",
		},
		{
			name: "session-without-close-visibility",
			impl: pfs.Options{Semantics: pfs.Commit},
			spec: pfs.Session,
			sched: pfstest.Schedule{w(0, "mid-session"),
				{Kind: pfstest.OpCommit, Rank: 0}, r(1, 0)},
			clause: "session-isolation",
		},
		{
			// Implementation delay 10 µs, spec bound 100 ns: with the
			// runner's 10 ns clock step, the trailing reads run well past
			// the spec bound but far inside the implementation's delay.
			name:   "eventual-with-unbounded-staleness",
			impl:   pfs.Options{Semantics: pfs.Eventual, EventualDelay: 10_000},
			spec:   pfs.Eventual,
			delay:  100,
			sched:  pfstest.Schedule{w(0, "late")},
			clause: "eventual-bounded-staleness",
		},
		{
			name:   "unordered-same-process",
			impl:   pfs.Options{Semantics: pfs.Commit, UnorderedSameProcess: true},
			spec:   pfs.Commit,
			sched:  pfstest.Schedule{w(0, "old"), w(0, "NEW"), r(0, 0)},
			clause: "po-read-your-writes",
		},
	}
	// Pad the staleness mutant with reads until the spec bound has long
	// expired (each op advances the clock by 10 ns).
	for i := 0; i < 20; i++ {
		ms[3].sched = append(ms[3].sched, r(1, 0))
	}
	return ms
}

func runMutant(t *testing.T, m mutant, sched pfstest.Schedule) Result {
	t.Helper()
	fs := pfs.New(m.impl)
	log := NewLog()
	fs.SetHistoryRecorder(log)
	if _, err := pfstest.Run(fs, sched); err != nil {
		t.Fatalf("mutant run: %v\n%s", err, pfstest.Format(sched))
	}
	return CheckLog(m.spec, log, Options{EventualDelayNS: m.delay})
}

// TestMutantsRejected: every weakened implementation must be rejected with
// a counterexample naming the clause it dropped.
func TestMutantsRejected(t *testing.T) {
	for _, m := range mutants() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			res := runMutant(t, m, m.sched)
			if res.OK() {
				t.Fatalf("spec %v accepted mutant history", m.spec)
			}
			v := res.Violation
			if v.Clause != m.clause {
				t.Fatalf("rejected with clause %s, want %s (%v)", v.Clause, m.clause, v)
			}
			if v.Read.Kind != pfs.EvRead {
				t.Fatalf("counterexample not anchored to a read: %v", v)
			}
			if v.String() == "" {
				t.Fatal("empty counterexample rendering")
			}
		})
	}
}

// TestMutantCounterexampleIsMinimal: shrinking a randomized failing mutant
// schedule yields a minimal still-rejected history — for the isolation
// mutant that is one write and one read.
func TestMutantCounterexampleIsMinimal(t *testing.T) {
	m := mutants()[0] // commit-without-pending-isolation
	base := pfstest.BaseSeed(t, 11)
	pfstest.Trials(t, base, 25, func(t *testing.T, rng *rand.Rand) {
		sched := pfstest.Generate(rng, pfstest.GenOptions{})
		fails := func(s pfstest.Schedule) bool {
			fs := pfs.New(m.impl)
			log := NewLog()
			fs.SetHistoryRecorder(log)
			if _, err := pfstest.Run(fs, s); err != nil {
				return false
			}
			return !CheckLog(m.spec, log, Options{}).OK()
		}
		if !fails(sched) {
			t.Skip("schedule has no isolation-violating read")
		}
		min := pfstest.Shrink(sched, fails)
		if len(min) != 2 {
			t.Fatalf("minimal counterexample has %d ops, want 2 (write + read):\n%s",
				len(min), pfstest.Format(min))
		}
		if min[0].Kind != pfstest.OpWrite || min[1].Kind != pfstest.OpRead {
			t.Fatalf("minimal counterexample is not write+read:\n%s", pfstest.Format(min))
		}
	})
}

// TestMutantsRejectedUnderRandomSchedules: across randomized schedules the
// specs keep catching the mutants — at least once per mutant over the
// sweep (any individual schedule may legitimately lack a violating read).
func TestMutantsRejectedUnderRandomSchedules(t *testing.T) {
	for _, m := range mutants() {
		m := m
		if m.name == "eventual-with-unbounded-staleness" {
			// Needs schedules long enough to cross the spec bound; the
			// deterministic case covers it.
			continue
		}
		t.Run(m.name, func(t *testing.T) {
			base := pfstest.BaseSeed(t, 13)
			rng := rand.New(rand.NewSource(base))
			rejected := 0
			const trials = 200
			for i := 0; i < trials; i++ {
				sched := pfstest.Generate(rng, pfstest.GenOptions{})
				if res := runMutant(t, m, sched); !res.OK() {
					rejected++
				}
			}
			if rejected == 0 {
				t.Fatalf("mutant survived all %d randomized schedules", trials)
			}
			t.Logf("rejected %d/%d randomized schedules", rejected, trials)
		})
	}
}
