package core

import (
	"path"
	"sort"
	"strings"
)

// AccessClass categorizes the transition between two successive accesses
// (§6.2): consecutive (the next access starts exactly where the previous
// ended), monotonic (it starts strictly beyond), or random.
type AccessClass int

const (
	Consecutive AccessClass = iota
	Monotonic
	Random
)

func (c AccessClass) String() string {
	switch c {
	case Consecutive:
		return "consecutive"
	case Monotonic:
		return "monotonic"
	default:
		return "random"
	}
}

// PatternMix is one bar of Figure 1: the share of transitions per class.
type PatternMix struct {
	Consecutive int
	Monotonic   int
	Random      int
}

// Total returns the number of classified transitions.
func (m PatternMix) Total() int { return m.Consecutive + m.Monotonic + m.Random }

// Pct returns the percentage mix (0-100, floats) as consecutive, monotonic,
// random. A mix with no transitions reports 100% consecutive (a single
// access is trivially sequential).
func (m PatternMix) Pct() (float64, float64, float64) {
	t := m.Total()
	if t == 0 {
		return 100, 0, 0
	}
	return 100 * float64(m.Consecutive) / float64(t),
		100 * float64(m.Monotonic) / float64(t),
		100 * float64(m.Random) / float64(t)
}

// plus returns the element-wise sum of two mixes (class counts are
// additive across files, which is what makes the per-file shard merge of
// the parallel path exact).
func (m PatternMix) plus(o PatternMix) PatternMix {
	return PatternMix{
		Consecutive: m.Consecutive + o.Consecutive,
		Monotonic:   m.Monotonic + o.Monotonic,
		Random:      m.Random + o.Random,
	}
}

func (m *PatternMix) add(c AccessClass) {
	switch c {
	case Consecutive:
		m.Consecutive++
	case Monotonic:
		m.Monotonic++
	default:
		m.Random++
	}
}

func classify(prev, next *Interval) AccessClass {
	switch {
	case next.Os == prev.Oe:
		return Consecutive
	case next.Os > prev.Oe:
		return Monotonic
	default:
		return Random
	}
}

// LocalPattern computes Figure 1(b): transitions between successive accesses
// of each process to each file, aggregated over the whole trace.
func LocalPattern(fas []*FileAccesses) PatternMix {
	var mix PatternMix
	for _, fa := range fas {
		mix = mix.plus(localPatternFile(fa))
	}
	return mix
}

// localPatternFile computes one file's local transition mix.
func localPatternFile(fa *FileAccesses) PatternMix {
	var mix PatternMix
	byRank := make(map[int32][]*Interval)
	for i := range fa.Intervals {
		iv := &fa.Intervals[i]
		byRank[iv.Rank] = append(byRank[iv.Rank], iv)
	}
	for _, seq := range byRank {
		sortByTime(seq)
		for i := 1; i < len(seq); i++ {
			mix.add(classify(seq[i-1], seq[i]))
		}
	}
	return mix
}

// GlobalPattern computes Figure 1(a): transitions between successive
// accesses to each file in global time order, across all processes — the
// request stream the PFS actually sees.
func GlobalPattern(fas []*FileAccesses) PatternMix {
	var mix PatternMix
	for _, fa := range fas {
		mix = mix.plus(globalPatternFile(fa))
	}
	return mix
}

// globalPatternFile computes one file's global transition mix.
func globalPatternFile(fa *FileAccesses) PatternMix {
	var mix PatternMix
	seq := make([]*Interval, 0, len(fa.Intervals))
	for i := range fa.Intervals {
		seq = append(seq, &fa.Intervals[i])
	}
	sortByTime(seq)
	for i := 1; i < len(seq); i++ {
		mix.add(classify(seq[i-1], seq[i]))
	}
	return mix
}

func sortByTime(seq []*Interval) {
	sort.Slice(seq, func(a, b int) bool {
		if seq[a].T != seq[b].T {
			return seq[a].T < seq[b].T
		}
		return seq[a].Rank < seq[b].Rank
	})
}

// Scale is one axis of the paper's X-Y notation.
type Scale int

const (
	One Scale = iota
	M
	N
)

func (s Scale) String() string {
	switch s {
	case One:
		return "1"
	case M:
		return "M"
	default:
		return "N"
	}
}

// Layout is Table 3's in-file layout category.
type Layout int

const (
	LayoutConsecutive Layout = iota
	LayoutStrided
	LayoutStridedCyclic
	LayoutRandom
)

func (l Layout) String() string {
	switch l {
	case LayoutConsecutive:
		return "consecutive"
	case LayoutStrided:
		return "strided"
	case LayoutStridedCyclic:
		return "strided cyclic"
	default:
		return "random"
	}
}

// HighLevelPattern is one Table 3 entry for an application: X processes
// accessing Y files with the given in-file layout.
type HighLevelPattern struct {
	X, Y   Scale
	Layout Layout
	Files  []string // the file family behind this entry
}

// Key renders the pattern as the paper writes it, e.g. "N-1 strided".
func (p HighLevelPattern) Key() string {
	return p.X.String() + "-" + p.Y.String() + " " + p.Layout.String()
}

// HLOptions tunes the high-level classification.
type HLOptions struct {
	// WorldSize is the number of ranks in the run (required).
	WorldSize int
	// Exclude filters out files that should not be classified (defaults to
	// configuration-input files under "/in/"; the paper likewise excludes
	// input-reading patterns from Table 3).
	Exclude func(path string) bool
	// MetaSizeThreshold drops accesses smaller than this from layout
	// classification (library metadata; the paper tolerates "a small amount
	// of extra metadata" in its strided categories). Default 512 bytes.
	MetaSizeThreshold int64
}

func (o HLOptions) withDefaults() HLOptions {
	if o.Exclude == nil {
		o.Exclude = func(p string) bool { return strings.HasPrefix(p, "/in/") }
	}
	if o.MetaSizeThreshold == 0 {
		o.MetaSizeThreshold = 512
	}
	return o
}

// fileSummary is the per-file digest the classifier works from.
type fileSummary struct {
	path       string
	tMin, tMax uint64
	accessors  map[int32]bool // writers if the file has writes, else readers
	hasWrites  bool
	layout     Layout
}

// ClassifyHighLevel reproduces Table 3: it groups an application's files
// into families (same directory, or same digit-stripped name template),
// determines how many processes access how many files concurrently, and
// classifies the per-process in-file layout. A family of files written one
// after another (a checkpoint series) counts as repeated X-1 phases; files
// written concurrently count as X-M / X-N.
func ClassifyHighLevel(fas []*FileAccesses, opts HLOptions) []HighLevelPattern {
	o := opts.withDefaults()
	var sums []*fileSummary
	for _, fa := range fas {
		if o.Exclude(fa.Path) || len(fa.Intervals) == 0 {
			continue
		}
		sums = append(sums, summarize(fa, o.MetaSizeThreshold))
	}
	return groupSummaries(sums, o.WorldSize)
}

// groupSummaries is the family-grouping tail of ClassifyHighLevel, shared
// with the parallel path: sums must be in fas (path-sorted) order.
func groupSummaries(sums []*fileSummary, worldSize int) []HighLevelPattern {
	families := make(map[string][]*fileSummary)
	for _, s := range sums {
		families[familyKey(s.path)] = append(families[familyKey(s.path)], s)
	}
	keys := make([]string, 0, len(families))
	for k := range families {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []HighLevelPattern
	seen := make(map[string]bool)
	for _, k := range keys {
		// A family may hold a time-series of I/O phases (a checkpoint
		// series, repeated multi-file dumps); each concurrent cluster is
		// one phase and classifies independently.
		for _, cluster := range clusterByTime(families[k]) {
			p := classifyFamily(cluster, worldSize)
			if seen[p.Key()] {
				for i := range out {
					if out[i].Key() == p.Key() {
						out[i].Files = append(out[i].Files, p.Files...)
					}
				}
				continue
			}
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	return out
}

// clusterByTime partitions a family into groups of files whose access
// episodes overlap in time.
func clusterByTime(fam []*fileSummary) [][]*fileSummary {
	sorted := append([]*fileSummary(nil), fam...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].tMin < sorted[j].tMin })
	var out [][]*fileSummary
	var cur []*fileSummary
	var curHi uint64
	for _, s := range sorted {
		if len(cur) > 0 && s.tMin >= curHi {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, s)
		if s.tMax > curHi {
			curHi = s.tMax
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

func summarize(fa *FileAccesses, metaThreshold int64) *fileSummary {
	s := &fileSummary{path: fa.Path, accessors: make(map[int32]bool)}
	for i := range fa.Intervals {
		iv := &fa.Intervals[i]
		if iv.Write {
			s.hasWrites = true
		}
	}
	byRank := make(map[int32][]*Interval)
	allAccessors := make(map[int32]bool)
	for i := range fa.Intervals {
		iv := &fa.Intervals[i]
		if s.hasWrites && !iv.Write {
			continue // writers define the pattern of written files
		}
		allAccessors[iv.Rank] = true
		if s.tMin == 0 && s.tMax == 0 {
			s.tMin, s.tMax = iv.T, iv.TEnd
		}
		if iv.T < s.tMin {
			s.tMin = iv.T
		}
		if iv.TEnd > s.tMax {
			s.tMax = iv.TEnd
		}
		if iv.Oe-iv.Os >= metaThreshold {
			byRank[iv.Rank] = append(byRank[iv.Rank], iv)
			s.accessors[iv.Rank] = true
		}
	}
	// X counts the processes moving data, not the ones touching library
	// metadata (the paper's "small amount of extra metadata" tolerance:
	// FLASH-fbs is M-1 through its six aggregators even though ~30 ranks
	// write HDF5 metadata). Files with only sub-threshold accesses keep
	// their full accessor set.
	if len(s.accessors) == 0 {
		s.accessors = allAccessors
	}
	s.layout = LayoutConsecutive
	for _, seq := range byRank {
		sortByTime(seq)
		if l := layoutOf(seq); l > s.layout {
			s.layout = l
		}
	}
	return s
}

// layoutOf classifies one process's (size-filtered) access sequence in one
// file. A library call ("phase") issuing two or more non-adjacent blocks
// marks the block-cyclic file domains of collective buffering — the paper's
// "strided cyclic".
func layoutOf(seq []*Interval) Layout {
	if len(seq) < 2 {
		return LayoutConsecutive
	}
	perPhase := make(map[int]int)
	consecutive, monotonic := true, true
	for i := 1; i < len(seq); i++ {
		switch classify(seq[i-1], seq[i]) {
		case Monotonic:
			consecutive = false
		case Random:
			consecutive = false
			monotonic = false
		}
	}
	for i := range seq {
		if seq[i].Phase >= 0 {
			perPhase[seq[i].Phase]++
		}
	}
	cyclic := false
	for ph, n := range perPhase {
		if n >= 2 {
			// Does the phase's block set have gaps?
			var blocks []*Interval
			for i := range seq {
				if seq[i].Phase == ph {
					blocks = append(blocks, seq[i])
				}
			}
			sort.Slice(blocks, func(a, b int) bool { return blocks[a].Os < blocks[b].Os })
			for i := 1; i < len(blocks); i++ {
				if blocks[i].Os > blocks[i-1].Oe {
					cyclic = true
				}
			}
		}
	}
	switch {
	case cyclic:
		return LayoutStridedCyclic
	case consecutive:
		return LayoutConsecutive
	case monotonic:
		return LayoutStrided
	default:
		return LayoutRandom
	}
}

// familyKey groups related files: files in a subdirectory belong together
// (ADIOS .bp bundles), otherwise files sharing a digit-stripped name
// template (checkpoint series, file-per-process sets).
func familyKey(p string) string {
	dir := path.Dir(p)
	if dir != "/" && dir != "." {
		return dir
	}
	base := path.Base(p)
	var b strings.Builder
	for _, r := range base {
		if r >= '0' && r <= '9' {
			continue
		}
		b.WriteRune(r)
	}
	return "tpl:" + b.String()
}

func classifyFamily(fam []*fileSummary, world int) HighLevelPattern {
	var files []string
	union := make(map[int32]bool)
	layout := LayoutConsecutive
	allSingle := true
	for _, s := range fam {
		files = append(files, s.path)
		for r := range s.accessors {
			union[r] = true
		}
		if len(s.accessors) > 1 {
			allSingle = false
		}
		if s.layout > layout {
			layout = s.layout
		}
	}
	sort.Strings(files)
	x := scaleOf(len(union), world)

	var y Scale
	switch {
	case allSingle && len(union) > 1:
		// File-per-process (or per-aggregator) family.
		y = scaleOf(len(fam), world)
	case len(fam) == 1:
		y = One
	case concurrent(fam):
		y = scaleOf(len(fam), world)
	default:
		// Sequential series (one file at a time): repeated X-1 phases.
		y = One
	}
	return HighLevelPattern{X: x, Y: y, Layout: layout, Files: files}
}

func scaleOf(n, world int) Scale {
	switch {
	case n <= 1:
		return One
	case n >= world:
		return N
	default:
		return M
	}
}

// concurrent reports whether any two files of the family were accessed in
// overlapping time windows.
func concurrent(fam []*fileSummary) bool {
	type ep struct{ lo, hi uint64 }
	eps := make([]ep, len(fam))
	for i, s := range fam {
		eps[i] = ep{s.tMin, s.tMax}
	}
	sort.Slice(eps, func(a, b int) bool { return eps[a].lo < eps[b].lo })
	for i := 1; i < len(eps); i++ {
		if eps[i].lo < eps[i-1].hi {
			return true
		}
	}
	return false
}
