package semfs_test

import (
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"

	// Every package that registers instruments on the default registry. All
	// registration is init-time (package-level vars), so linking these in
	// makes the snapshot's key set the complete, deterministic instrument
	// namespace.
	_ "repro/internal/ckpt"
	_ "repro/internal/consistency"
	_ "repro/internal/core"
	_ "repro/internal/experiments"
	_ "repro/internal/faults"
	_ "repro/internal/obs/live"
	_ "repro/internal/pfs"
	_ "repro/internal/recorder"
	_ "repro/internal/storage"
	_ "repro/internal/wal"
)

const obsSchemaGolden = "testdata/obs_schema.golden"

// TestObsSchemaGolden pins the telemetry snapshot schema: the set of
// instrument names and their types. Dashboards and the CI telemetry step
// key on these names, so adding, renaming or retyping an instrument is a
// deliberate act — rerun with UPDATE_OBS_SCHEMA=1 to regenerate the golden
// file and put the diff in review.
func TestObsSchemaGolden(t *testing.T) {
	snap := obs.Default().Snapshot()
	var lines []string
	for name := range snap.Counters {
		lines = append(lines, "counter "+name)
	}
	for name := range snap.Gauges {
		lines = append(lines, "gauge "+name)
	}
	for name := range snap.Histograms {
		lines = append(lines, "histogram "+name)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	if os.Getenv("UPDATE_OBS_SCHEMA") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(obsSchemaGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d instruments)", obsSchemaGolden, len(lines))
		return
	}

	want, err := os.ReadFile(obsSchemaGolden)
	if err != nil {
		t.Fatalf("reading %s (rerun with UPDATE_OBS_SCHEMA=1 to create it): %v", obsSchemaGolden, err)
	}
	if got == string(want) {
		return
	}
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range lines {
		gotSet[l] = true
		if !wantSet[l] {
			t.Errorf("instrument not in golden schema: %s", l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			t.Errorf("instrument missing from registry: %s", l)
		}
	}
	t.Errorf("obs snapshot schema drifted from %s — if intended, rerun with UPDATE_OBS_SCHEMA=1", obsSchemaGolden)
}
