package core

import "sort"

// OverlapPair indexes two overlapping intervals within a FileAccesses'
// Intervals slice, ordered so that Intervals[A].T <= Intervals[B].T.
type OverlapPair struct {
	A, B int
}

// RankPairTable is the paper's table P: counts of overlapping operation
// pairs per (rank, rank) pair, with the smaller rank first.
type RankPairTable map[[2]int32]int

// DetectOverlaps implements Algorithm 1: sort the tuples by starting
// offset, then sweep — for each interval, scan forward until an interval
// starts at or beyond its end (subsequent tuples cannot overlap it). The
// returned table counts overlapping pairs per rank pair.
//
// onPair, when non-nil, is invoked for every overlapping pair (time-ordered)
// where the earlier operation is a write — the candidate conflicts of §4.1;
// read-read overlaps are tallied in the table but never materialized, which
// keeps read-heavy workloads (e.g. LBANN, where every rank reads the whole
// file) from generating quadratic pair lists.
func DetectOverlaps(ivs []Interval, onPair func(OverlapPair)) RankPairTable {
	table := make(RankPairTable)
	if len(ivs) < 2 {
		return table
	}
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := &ivs[idx[a]], &ivs[idx[b]]
		if ia.Os != ib.Os {
			return ia.Os < ib.Os
		}
		return ia.T < ib.T
	})
	for a := 0; a < len(idx); a++ {
		ia := &ivs[idx[a]]
		for b := a + 1; b < len(idx); b++ {
			ib := &ivs[idx[b]]
			if ib.Os >= ia.Oe {
				break // sorted by Os: no later tuple overlaps ia
			}
			key := rankKey(ia.Rank, ib.Rank)
			table[key]++
			if onPair == nil {
				continue
			}
			// Time-order the pair; candidate conflicts need the earlier
			// operation to be a write.
			first, second := idx[a], idx[b]
			if earlier(ivs, second, first) {
				first, second = second, first
			}
			if ivs[first].Write {
				onPair(OverlapPair{A: first, B: second})
			}
		}
	}
	return table
}

func rankKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// earlier deterministically orders two intervals by entry time, breaking
// timestamp ties by slice index so Algorithm 1 and the brute-force oracle
// always agree.
func earlier(ivs []Interval, i, j int) bool {
	if ivs[i].T != ivs[j].T {
		return ivs[i].T < ivs[j].T
	}
	return i < j
}

// DetectOverlapsBruteForce is the O(n²) reference implementation used by
// property tests to validate Algorithm 1.
func DetectOverlapsBruteForce(ivs []Interval, onPair func(OverlapPair)) RankPairTable {
	table := make(RankPairTable)
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			a, b := &ivs[i], &ivs[j]
			if a.Os < b.Oe && b.Os < a.Oe {
				table[rankKey(a.Rank, b.Rank)]++
				if onPair != nil {
					first, second := i, j
					if earlier(ivs, second, first) {
						first, second = second, first
					}
					if ivs[first].Write {
						onPair(OverlapPair{A: first, B: second})
					}
				}
			}
		}
	}
	return table
}
