package faults

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/sim"
	"repro/internal/wal"
)

// The chaos harness: replay every application configuration under fault
// schedules across the four consistency models and check the invariants
// that must hold no matter what the schedule does:
//
//  1. Schedule determinism — regenerating a cell's schedule from its seed
//     yields byte-identical Encode output.
//  2. Containment — the run completes (a crashed rank detaches; survivors
//     never wedge) and produces a valid, aligned trace.
//  3. Crash attribution — every rank a crash injection killed surfaces a
//     rank error; under Strong semantics with zero fired faults, no rank
//     errors at all (the baseline guarantee), while weaker models may
//     legitimately fail verification — that is what the conflict detector
//     is for, so the analysis must still classify the trace.
//  4. Analyzability — the full conflict analysis completes on every faulted
//     trace and yields a verdict.
//  5. Replay determinism (optional) — re-running a cell reproduces the
//     byte-identical trace and the same fault event log.

// SweepOptions configures a chaos sweep.
type SweepOptions struct {
	// Apps selects configurations by display name; nil means the full
	// registry.
	Apps []string
	// Semantics lists the consistency models; nil means all four.
	Semantics []pfs.Semantics
	// Seeds drive schedule generation and the simulation; nil means {1}.
	Seeds []uint64
	// Kinds restricts the fault taxonomy; nil means all kinds.
	Kinds []Kind
	// Ranks/PPN size each run (defaults 4/2 — small, the faults matter more
	// than the scale).
	Ranks, PPN int
	// Params scales the workload (defaults to a fast chaos-sized run).
	Params apps.Params
	// Workers sizes the sweep pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Replay re-runs every cell and checks byte-identical traces and fault
	// event logs. Doubles the cost.
	Replay bool
	// WAL routes every rank's file I/O through a host-side write-ahead log
	// (internal/wal), so the fault schedules also exercise the background
	// drain, retry and degradation paths. Leave Dir empty: each rank log
	// then manages its own private temp directory.
	WAL *wal.Options
}

func (o SweepOptions) withDefaults() SweepOptions {
	if len(o.Apps) == 0 {
		o.Apps = apps.Names()
	}
	if len(o.Semantics) == 0 {
		o.Semantics = []pfs.Semantics{pfs.Strong, pfs.Commit, pfs.Session, pfs.Eventual}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.PPN <= 0 {
		o.PPN = 2
	}
	if o.Params == (apps.Params{}) {
		o.Params = apps.Params{Steps: 3, CheckpointEvery: 2, Block: 512}
	}
	return o
}

// Cell is one (application, semantics, seed) replay.
type Cell struct {
	App       string
	Semantics pfs.Semantics
	Seed      uint64
	// ScheduleFP fingerprints the fault schedule the cell ran under.
	ScheduleFP uint64
	// Fired counts injections that actually fired during the run.
	Fired int
	// Tallies break scheduled versus fired down per fault kind (taxonomy
	// order; empty when the cell failed before its run completed).
	Tallies []KindTally
	// RankErrors counts failed ranks (crashes, exhausted retries, failed
	// verification under weak semantics).
	RankErrors int
	// Weakest is the verdict of the post-run conflict analysis.
	Weakest pfs.Semantics
	// Err is a hard failure: the run or its analysis did not complete.
	Err error
}

// Violation is one invariant breach.
type Violation struct {
	Cell Cell
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s/seed=%d: %s", v.Cell.App, v.Cell.Semantics, v.Cell.Seed, v.Desc)
}

// Report is the outcome of a sweep.
type Report struct {
	Cells      []Cell
	Violations []Violation
	TotalFired int
}

// KindSummary aggregates the per-kind tallies over every cell of the sweep:
// how many injections each fault kind scheduled, how many fired, and how
// many were suppressed (the rank never reached the targeted operation).
func (rep *Report) KindSummary() []KindTally {
	sum := make([]KindTally, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		sum[k].Kind = k
	}
	for _, c := range rep.Cells {
		for _, t := range c.Tallies {
			sum[t.Kind].Scheduled += t.Scheduled
			sum[t.Kind].Fired += t.Fired
		}
	}
	return sum
}

// Sweep runs the chaos matrix. The returned error is non-nil only for a
// cancelled context; invariant breaches are reported as Violations, and
// per-cell hard failures land both in the cell's Err and in Violations.
func Sweep(ctx context.Context, o SweepOptions) (*Report, error) {
	o = o.withDefaults()
	type key struct {
		app  int
		sem  int
		seed int
	}
	var cells []key
	for a := range o.Apps {
		for s := range o.Semantics {
			for sd := range o.Seeds {
				cells = append(cells, key{a, s, sd})
			}
		}
	}
	out := make([]Cell, len(cells))
	viols := make([][]Violation, len(cells))
	err := core.ParallelForCtx(ctx, len(cells), o.Workers, func(i int) {
		k := cells[i]
		out[i], viols[i] = runChaosCell(o, o.Apps[k.app], o.Semantics[k.sem], o.Seeds[k.seed])
	})
	rep := &Report{}
	for i := range out {
		if out[i].App == "" {
			continue // cell never ran (cancelled mid-sweep)
		}
		rep.Cells = append(rep.Cells, out[i])
		rep.TotalFired += out[i].Fired
		rep.Violations = append(rep.Violations, viols[i]...)
	}
	return rep, err
}

// runChaosCell executes one cell and checks its invariants.
func runChaosCell(o SweepOptions, app string, sem pfs.Semantics, seed uint64) (Cell, []Violation) {
	cell := Cell{App: app, Semantics: sem, Seed: seed}
	var viols []Violation
	violate := func(format string, args ...any) {
		viols = append(viols, Violation{Cell: cell, Desc: fmt.Sprintf(format, args...)})
	}

	// One deterministic sub-seed per cell, derived from the application's
	// *name* (not its position in the sweep's app list): the same cell always
	// runs the same schedule no matter how the sweep was filtered, which is
	// what makes the single-cell ReproCommand replay exact.
	h := fnv.New64a()
	h.Write([]byte(app))
	cellSeed := sim.NewRNG(seed).Split(h.Sum64()).Split(uint64(sem)).Uint64()
	gen := GenOptions{Ranks: o.Ranks, Kinds: o.Kinds}
	sched := Generate(cellSeed, gen)
	cell.ScheduleFP = sched.Fingerprint()

	// Invariant 1: schedule generation is deterministic.
	if again := Generate(cellSeed, gen); !bytes.Equal(sched.Encode(), again.Encode()) {
		violate("schedule nondeterminism: seed %d produced different encodings", cellSeed)
		cell.Err = fmt.Errorf("faults: nondeterministic schedule for seed %d", cellSeed)
		return cell, viols
	}

	inj, res, err := replayCell(o, app, sem, seed, sched)
	if err != nil {
		// Invariant 2: containment — the run itself must complete.
		cell.Err = err
		violate("run did not complete: %v", err)
		return cell, viols
	}
	cell.Fired = inj.Fired()
	cell.Tallies = inj.KindTallies()
	cell.RankErrors = len(res.Errs)

	// Invariant 3: crash attribution.
	for _, r := range inj.CrashedRanks() {
		if !rankErrored(res.Errs, r) {
			violate("rank %d was crash-injected but reported no error", r)
		}
	}
	if sem == pfs.Strong && cell.Fired == 0 && cell.RankErrors > 0 {
		violate("strong semantics with zero fired faults still failed %d rank(s): %v",
			cell.RankErrors, res.Errs[0])
	}

	// Invariant 4: the faulted trace must still analyze.
	verdict, err := core.AnalyzeParallelCtx(context.Background(), res.Trace, o.Workers)
	if err != nil {
		cell.Err = err
		violate("analysis failed on faulted trace: %v", err)
		return cell, viols
	}
	cell.Weakest = verdict.Weakest

	// Invariant 5 (optional): replay determinism.
	if o.Replay {
		inj2, res2, err := replayCell(o, app, sem, seed, sched)
		if err != nil {
			cell.Err = err
			violate("replay did not complete: %v", err)
			return cell, viols
		}
		if a, b := TraceFingerprint(res.Trace), TraceFingerprint(res2.Trace); a != b {
			violate("replay produced a different trace (%016x != %016x)", a, b)
		}
		if a, b := inj.EventLog(), inj2.EventLog(); a != b {
			violate("replay fired different faults:\n--- first\n%s--- second\n%s", a, b)
		}
	}
	return cell, viols
}

// replayCell runs one application under a schedule.
func replayCell(o SweepOptions, app string, sem pfs.Semantics, seed uint64, sched Schedule) (*Injector, *harness.Result, error) {
	cfg, ok := apps.Lookup(app)
	if !ok {
		return nil, nil, fmt.Errorf("faults: unknown application %q", app)
	}
	inj := NewInjector(sched)
	p := o.Params
	p.Verify = true // the applications' own read-back checks are the oracle
	res, err := apps.Execute(cfg, apps.Options{
		Ranks: o.Ranks, PPN: o.PPN, Seed: seed, Semantics: sem,
		Injector: inj, Params: p, WAL: o.WAL,
	})
	if err != nil {
		return nil, nil, err
	}
	return inj, res, nil
}

// rankErrored reports whether errs contains a failure attributed to rank r
// (harness errors are prefixed "rank N:" or "rank N panicked").
func rankErrored(errs []error, r int) bool {
	p1 := fmt.Sprintf("rank %d:", r)
	p2 := fmt.Sprintf("rank %d panicked", r)
	for _, e := range errs {
		if s := e.Error(); strings.HasPrefix(s, p1) || strings.HasPrefix(s, p2) {
			return true
		}
	}
	return false
}

// TraceFingerprint hashes a trace's canonical binary encoding (FNV-1a 64
// over every rank stream in rank order) — the replay-determinism oracle.
func TraceFingerprint(tr *recorder.Trace) uint64 {
	h := fnv.New64a()
	for rank, rs := range tr.PerRank {
		if err := recorder.EncodeRankStream(h, rank, rs); err != nil {
			// Encoding an in-memory trace only fails on corrupt records;
			// fold the failure into the fingerprint rather than masking it.
			fmt.Fprintf(h, "encode-error rank=%d: %v", rank, err)
		}
	}
	return h.Sum64()
}

// RenderSweep formats a report as a per-application table plus the
// violation list.
func RenderSweep(rep *Report) string {
	type row struct {
		cells, fired, rankErrs int
	}
	byApp := make(map[string]*row)
	var order []string
	for _, c := range rep.Cells {
		r, ok := byApp[c.App]
		if !ok {
			r = &row{}
			byApp[c.App] = r
			order = append(order, c.App)
		}
		r.cells++
		r.fired += c.Fired
		r.rankErrs += c.RankErrors
	}
	sort.Strings(order)
	var b strings.Builder
	b.WriteString("Chaos sweep: fault injection across semantics levels\n\n")
	fmt.Fprintf(&b, "%-20s  %6s  %6s  %9s\n", "application", "cells", "fired", "rank errs")
	b.WriteString(strings.Repeat("-", 48) + "\n")
	for _, app := range order {
		r := byApp[app]
		fmt.Fprintf(&b, "%-20s  %6d  %6d  %9d\n", app, r.cells, r.fired, r.rankErrs)
	}
	b.WriteString("\nFault kinds (scheduled vs fired; suppressed = the rank never reached\nthe targeted operation, e.g. it was already crash-killed):\n\n")
	fmt.Fprintf(&b, "%-20s  %9s  %6s  %10s\n", "kind", "scheduled", "fired", "suppressed")
	b.WriteString(strings.Repeat("-", 52) + "\n")
	for _, t := range rep.KindSummary() {
		fmt.Fprintf(&b, "%-20s  %9d  %6d  %10d\n", t.Kind, t.Scheduled, t.Fired, t.Suppressed())
	}
	fmt.Fprintf(&b, "\n%d cells, %d faults fired, %d violation(s)\n",
		len(rep.Cells), rep.TotalFired, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
		fmt.Fprintf(&b, "    repro: %s\n", v.Cell.ReproCommand())
	}
	return b.String()
}

// ReproCommand renders the exact semrepro invocation that replays this cell
// alone — same schedule, same seed, single configuration — so a failing
// chaos cell is one paste away from reproduction.
func (c Cell) ReproCommand() string {
	return fmt.Sprintf("semrepro -chaos -chaos-seeds %d -chaos-apps %q -chaos-semantics %s",
		c.Seed, c.App, c.Semantics)
}
