// PFS semantics lab: run the same applications against the four simulated
// consistency models with data verification on, and watch the paper's
// headline result play out — 16 of 17 applications run correctly on a
// session-semantics PFS; FLASH corrupts its HDF5 metadata there and needs
// commit semantics (or the collective-metadata one-line fix).
package main

import (
	"fmt"
	"log"

	semfs "repro"
)

func runOn(name string, sem semfs.Semantics) string {
	res, err := semfs.Run(name, semfs.RunOptions{
		Ranks: 32, PPN: 4, Semantics: sem, Verify: true,
	})
	if err != nil {
		log.Fatalf("%s on %v: %v", name, sem, err)
	}
	if err := res.Err(); err != nil {
		return fmt.Sprintf("FAIL (%d ranks corrupted)", len(res.RankErrors))
	}
	return "ok"
}

func main() {
	appsToTry := []string{
		"FLASH-nofbs", // the one application with a cross-process conflict
		"HACC-IO-POSIX",
		"pF3D-IO",
		"NWChem",
		"LBANN",
		"VASP",
	}
	fmt.Printf("%-16s  %-8s  %-8s  %-8s\n", "application", "strong", "commit", "session")
	fmt.Println("--------------------------------------------------")
	for _, name := range appsToTry {
		fmt.Printf("%-16s  %-8s  %-8s  %-8s\n", name,
			runOn(name, semfs.Strong),
			runOn(name, semfs.Commit),
			runOn(name, semfs.Session))
	}
	fmt.Println()
	fmt.Println("FLASH fails under session semantics because different processes rewrite")
	fmt.Println("the same HDF5 metadata across flush epochs: without a close/open pair the")
	fmt.Println("next owner reads a stale root header. H5Fflush's fsync is a commit, so")
	fmt.Println("commit semantics already orders those writes (Table 4 / §6.3).")
}
