package apps

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/hdf5"
	"repro/internal/mpiio"
	"repro/internal/recorder"
)

// enzoConfig emulates the ENZO non-cosmological collapse test: every rank
// writes its own HDF5 file per data dump (N-N consecutive), and the
// hierarchy pass reopens datasets it just created — the header read-back
// behind ENZO's RAW-S in Table 4.
func enzoConfig() *Config {
	return &Config{
		App: "ENZO", Library: "HDF5",
		Description: "Non-cosmological collapse test; file-per-process HDF5 dumps with dataset read-back during the hierarchy pass",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/CollapseTest.enzo", 1500)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/CollapseTest.enzo"); err != nil {
				return err
			}
			dump := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.Compute(50, 150)
				ctx.MPI.Allreduce(int64(step), mpiOpMax)
				if step%p.CheckpointEvery != 0 {
					continue
				}
				path := fmt.Sprintf("/enzo_data%04d.cpu%04d", dump, ctx.Rank)
				f, err := hdf5.CreateSerial(ctx.OS, ctx.Tracer, path, hdf5.Options{DataBase: 32 << 10})
				if err != nil {
					return err
				}
				for _, name := range []string{"GridDensity", "GridVelocity", "GridEnergy"} {
					d, err := f.CreateDataset(name, p.Block)
					if err != nil {
						return err
					}
					if err := d.Write(0, fill("enzo:"+name, ctx.Rank, dump, p.Block)); err != nil {
						return err
					}
					d.Close()
				}
				// Hierarchy pass: reopen the grid datasets (pread of the
				// headers this process wrote above — RAW-S, no commit
				// between).
				for _, name := range []string{"GridDensity", "GridVelocity"} {
					if _, err := f.OpenDataset(name); err != nil {
						return err
					}
				}
				if err := f.Close(); err != nil {
					return err
				}
				dump++
			}
			return ctx.Failures()
		},
	}
}

// paradisConfig emulates the ParaDiS dislocation dynamics run: all ranks
// write disjoint strided segments of a shared restart file series (N-1
// strided) through either HDF5 or plain POSIX. No conflicts either way;
// the HDF5 variant exercises the extra metadata calls of Figure 3.
func paradisConfig(library string) *Config {
	return &Config{
		App: "ParaDiS", Library: library,
		Description: "FMM dislocation dynamics in copper; shared restart file series, per-rank strided segments via " + library,
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/paradis.ctrl", 700)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/paradis.ctrl"); err != nil {
				return err
			}
			frame := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.Compute(50, 150)
				ctx.MPI.Allreduce(int64(step), mpiOpSum)
				if step%p.CheckpointEvery != 0 {
					continue
				}
				if library == "HDF5" {
					f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer,
						fmt.Sprintf("/paradis_rs%04d.h5", frame), hdf5.Options{DataBase: 32 << 10})
					if err != nil {
						return err
					}
					for _, name := range []string{"nodes", "arms"} {
						d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
						if err != nil {
							return err
						}
						if err := d.Write(int64(ctx.Rank)*p.Block, fill("paradis:"+name, ctx.Rank, frame, p.Block)); err != nil {
							return err
						}
						d.Close()
					}
					if err := f.Close(); err != nil {
						return err
					}
				} else {
					fd, err := ctx.OS.Open(fmt.Sprintf("/paradis_rs%04d.data", frame),
						recorder.OCreat|recorder.OWronly, 0o644)
					if err != nil {
						return err
					}
					for seg := 0; seg < 2; seg++ {
						off := int64(seg)*int64(ctx.Size)*p.Block + int64(ctx.Rank)*p.Block
						if _, err := ctx.OS.Pwrite(fd, fill("paradis", ctx.Rank, frame*2+seg, p.Block), off); err != nil {
							return err
						}
					}
					if err := ctx.OS.Close(fd); err != nil {
						return err
					}
				}
				frame++
			}
			return ctx.Failures()
		},
	}
}

// chomboConfig emulates the Chombo AMR Poisson solve: one shared HDF5 plot
// file, every rank writing its boxes independently at strided offsets (N-1
// strided, conflict-free).
func chomboConfig() *Config {
	return &Config{
		App: "Chombo", Library: "HDF5",
		Description: "3D variable-coefficient AMR Poisson solve; shared HDF5 plot file, per-rank strided box writes",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/chombo.inputs", 500)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/chombo.inputs"); err != nil {
				return err
			}
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(1)
				ctx.MPI.Allreduce(int64(step), mpiOpSum) // residual norm
			}
			f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer, "/chombo_plot.3d.hdf5",
				hdf5.Options{DataBase: 32 << 10})
			if err != nil {
				return err
			}
			for _, name := range []string{"phi", "rhs", "coeff"} {
				d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
				if err != nil {
					return err
				}
				if err := d.Write(int64(ctx.Rank)*p.Block, fill("chombo:"+name, ctx.Rank, 0, p.Block)); err != nil {
					return err
				}
				d.Close()
			}
			if err := f.Close(); err != nil {
				return err
			}
			return ctx.Failures()
		},
	}
}

// vpicConfig emulates the VPIC-IO kernel: one shared HDF5 particle file,
// eight variables written collectively with block-cyclic file domains (M-1
// strided cyclic).
func vpicConfig() *Config {
	vars := []string{"x", "y", "z", "ux", "uy", "uz", "q", "id"}
	return &Config{
		App: "VPIC-IO", Library: "HDF5",
		Description: "1D particle array, eight variables per particle, collective HDF5 writes through six aggregators",
		Run: func(ctx *harness.Ctx, p Params) error {
			f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer, "/vpic_particles.h5", hdf5.Options{
				Collective:    true,
				CBNodes:       6,
				CyclicDomains: true,
				CBBlock:       p.Block,
				DataBase:      32 << 10,
			})
			if err != nil {
				return err
			}
			for _, name := range vars {
				d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
				if err != nil {
					return err
				}
				if err := d.Write(int64(ctx.Rank)*p.Block, fill("vpic:"+name, ctx.Rank, 0, p.Block)); err != nil {
					return err
				}
				d.Close()
			}
			if err := f.Close(); err != nil {
				return err
			}
			return ctx.Failures()
		},
	}
}

// haccConfig emulates the HACC-IO kernel: file-per-process particle
// checkpoints (N-N consecutive), written through POSIX or MPI-IO, then read
// back after a close/reopen (restart) — conflict-free because the session
// boundary orders the accesses.
func haccConfig(library string) *Config {
	const nvars = 9 // xx yy zz vx vy vz phi pid mask
	return &Config{
		App: "HACC-IO", Library: library,
		Description: "HACC particle checkpoint/restart, file per process, nine variables via " + library,
		Run: func(ctx *harness.Ctx, p Params) error {
			path := fmt.Sprintf("/hacc/part.%04d", ctx.Rank)
			if library == "MPI-IO" {
				f, err := mpiio.Open(ctx.MPI, ctx.OS, ctx.Tracer, path,
					mpiio.ModeCreate|mpiio.ModeWronly, mpiio.Options{})
				if err != nil {
					return err
				}
				for v := 0; v < nvars; v++ {
					if err := f.Write(fill("hacc", ctx.Rank, v, p.Block)); err != nil {
						return err
					}
				}
				if err := f.Close(); err != nil {
					return err
				}
				r, err := mpiio.Open(ctx.MPI, ctx.OS, ctx.Tracer, path, mpiio.ModeRdonly, mpiio.Options{})
				if err != nil {
					return err
				}
				for v := 0; v < nvars; v++ {
					got, err := r.Read(p.Block)
					if err != nil {
						return err
					}
					if p.Verify {
						checkFill(ctx, "hacc restart", "hacc", ctx.Rank, v, got, p.Block)
					}
				}
				if err := r.Close(); err != nil {
					return err
				}
			} else {
				fd, err := ctx.OS.Open(path, recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
				if err != nil {
					return err
				}
				for v := 0; v < nvars; v++ {
					if _, err := ctx.OS.Write(fd, fill("hacc", ctx.Rank, v, p.Block)); err != nil {
						return err
					}
				}
				if err := ctx.OS.Close(fd); err != nil {
					return err
				}
				ctx.MPI.Barrier()
				rd, err := ctx.OS.Open(path, recorder.ORdonly, 0)
				if err != nil {
					return err
				}
				for v := 0; v < nvars; v++ {
					got, err := ctx.OS.Read(rd, p.Block)
					if err != nil {
						return err
					}
					if p.Verify {
						checkFill(ctx, "hacc restart", "hacc", ctx.Rank, v, got, p.Block)
					}
				}
				if err := ctx.OS.Close(rd); err != nil {
					return err
				}
			}
			return ctx.Failures()
		},
	}
}

// pf3dConfig emulates one pF3D checkpoint step: every rank writes its own
// checkpoint file consecutively and immediately reads back the leading
// section to validate it — same process, same open session (RAW-S).
func pf3dConfig() *Config {
	const chunks = 8
	return &Config{
		App: "pF3D-IO", Library: "POSIX",
		Description: "One pF3D checkpoint step per rank (scaled), with in-session read-back validation of the leading chunk",
		Run: func(ctx *harness.Ctx, p Params) error {
			path := fmt.Sprintf("/pf3d/ckpt.%04d", ctx.Rank)
			fd, err := ctx.OS.Open(path, recorder.OCreat|recorder.ORdwr|recorder.OTrunc, 0o644)
			if err != nil {
				return err
			}
			for c := 0; c < chunks; c++ {
				if _, err := ctx.OS.Write(fd, fill("pf3d", ctx.Rank, c, p.Block)); err != nil {
					return err
				}
			}
			if _, err := ctx.OS.Lseek(fd, 0, recorder.SeekSet); err != nil {
				return err
			}
			got, err := ctx.OS.Read(fd, p.Block) // RAW-S
			if err != nil {
				return err
			}
			if p.Verify {
				checkFill(ctx, "pf3d readback", "pf3d", ctx.Rank, 0, got, p.Block)
			}
			if err := ctx.OS.Close(fd); err != nil {
				return err
			}
			return ctx.Failures()
		},
	}
}

// milcConfig emulates MILC-QCD lattice checkpointing: with save_serial a
// single rank gathers and writes (1-1 consecutive); with save_parallel all
// ranks write their sublattices at strided offsets (N-1 strided).
func milcConfig(parallel bool) *Config {
	variant := "serial"
	desc := "Lattice QCD checkpoints with save_serial: rank 0 gathers and writes the lattice"
	if parallel {
		variant = "parallel"
		desc = "Lattice QCD checkpoints with save_parallel: every rank writes its sublattice at strided offsets"
	}
	return &Config{
		App: "MILC-QCD", Library: "POSIX", Variant: variant,
		Description: desc,
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/milc.in", 400)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/milc.in"); err != nil {
				return err
			}
			ckpt := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(2)
				ctx.MPI.Allreduce(int64(step), mpiOpSum) // plaquette
				if step%p.CheckpointEvery != 0 {
					continue
				}
				path := fmt.Sprintf("/lat.chk.%02d", ckpt)
				if parallel {
					fd, err := ctx.OS.Open(path, recorder.OCreat|recorder.OWronly, 0o644)
					if err != nil {
						return err
					}
					for seg := 0; seg < 2; seg++ {
						off := int64(seg)*int64(ctx.Size)*p.Block + int64(ctx.Rank)*p.Block
						if _, err := ctx.OS.Pwrite(fd, fill("milc", ctx.Rank, ckpt*2+seg, p.Block), off); err != nil {
							return err
						}
					}
					if err := ctx.OS.Close(fd); err != nil {
						return err
					}
				} else {
					lat := ctx.MPI.Gather(0, fill("milc", ctx.Rank, ckpt, p.Block))
					if ctx.Rank == 0 {
						fd, err := ctx.OS.Open(path, recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
						if err != nil {
							return err
						}
						for _, part := range lat {
							if _, err := ctx.OS.Write(fd, part); err != nil {
								return err
							}
						}
						if err := ctx.OS.Close(fd); err != nil {
							return err
						}
					}
				}
				ckpt++
			}
			return ctx.Failures()
		},
	}
}

// gtcConfig emulates the gyrokinetic toroidal code: rank 0 appends to the
// history file every step and writes restart files (1-1 consecutive).
func gtcConfig() *Config {
	return &Config{
		App: "GTC", Library: "POSIX",
		Description: "Built-in gtc.64p example; rank 0 appends diagnostics to history.out and writes restart files",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/gtc.input", 300)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/gtc.input"); err != nil {
				return err
			}
			var hist int
			var err error
			if ctx.Rank == 0 {
				if hist, err = ctx.OS.Fopen("/history.out", "a"); err != nil {
					return err
				}
			}
			ckpt := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(1)
				diag := ctx.MPI.Reduce(0, int64(step), mpiOpSum)
				if ctx.Rank == 0 {
					_ = diag
					if _, err := ctx.OS.Fwrite(hist, fill("gtc-hist", 0, step, 256), 1, 256); err != nil {
						return err
					}
				}
				if step%p.CheckpointEvery != 0 {
					continue
				}
				part := ctx.MPI.Gather(0, fill("gtc", ctx.Rank, ckpt, p.Block))
				if ctx.Rank == 0 {
					fd, err := ctx.OS.Open(fmt.Sprintf("/restart_dir%03d.d", ckpt),
						recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
					if err != nil {
						return err
					}
					for _, pt := range part {
						if _, err := ctx.OS.Write(fd, pt); err != nil {
							return err
						}
					}
					if err := ctx.OS.Close(fd); err != nil {
						return err
					}
				}
				ckpt++
			}
			if ctx.Rank == 0 {
				if err := ctx.OS.Fclose(hist); err != nil {
					return err
				}
			}
			return ctx.Failures()
		},
	}
}

// nek5000Config emulates the Nek5000 eddy benchmark: rank 0 gathers the
// solution fields and writes checkpoint files (1-1 consecutive).
func nek5000Config() *Config {
	return &Config{
		App: "Nek5000", Library: "POSIX",
		Description: "Eddy solutions in a doubly-periodic domain; rank 0 writes eddy0.f%05d checkpoints",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/eddy.rea", 900)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/eddy.rea"); err != nil {
				return err
			}
			ckpt := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(1)
				ctx.MPI.Allreduce(int64(step), mpiOpMax) // error monitor
				if step%p.CheckpointEvery != 0 {
					continue
				}
				fields := ctx.MPI.Gather(0, fill("nek", ctx.Rank, ckpt, p.Block))
				if ctx.Rank == 0 {
					fd, err := ctx.OS.Open(fmt.Sprintf("/eddy0.f%05d", ckpt),
						recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
					if err != nil {
						return err
					}
					if _, err := ctx.OS.Write(fd, fill("nekhdr", 0, ckpt, 132)); err != nil {
						return err
					}
					for _, fpart := range fields {
						if _, err := ctx.OS.Write(fd, fpart); err != nil {
							return err
						}
					}
					if err := ctx.OS.Close(fd); err != nil {
						return err
					}
				}
				ckpt++
			}
			return ctx.Failures()
		},
	}
}
