//go:build unix

package colfmt

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only, returning the mapped bytes and an
// unmap func. Callers fall back to reading the file on any error — mmap is
// an optimization, never a requirement.
func mapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// Zero-length mmap is an error on Linux; an empty slice decodes to
		// the same "bad magic" a zero-length read would.
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
