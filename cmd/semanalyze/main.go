// Command semanalyze runs the paper's analysis over a saved trace: conflict
// detection under commit and session semantics, access-pattern
// classification, the metadata-operation census and the happens-before
// validation, then prints the per-application verdict.
//
// Usage:
//
//	semanalyze -trace trace/
//	semanalyze -trace trace/ -checkpoint ckptdir -resume
//	semanalyze -trace trace/ -check-consistency
//
// With -checkpoint, each completed analysis is journaled (keyed by the
// trace's configuration name and content fingerprint) and -resume replays
// the cached report — including the original exit code — without re-running
// the analysis.
//
// With -check-consistency, the traced configuration is re-run under all
// four consistency models with the pfs op-history recorder attached, and
// each history is verified against its model's executable formal spec
// (internal/consistency); the cross-model cost table is printed and any
// spec rejection is reported with its counterexample clause.
//
// Exit codes: 0 = clean trace, 1 = the trace could not be loaded or
// analyzed, 2 = usage error, 3 = the analysis itself succeeded but found
// conflicts (unsynchronized pairs when -validate is on, any conflicting
// pairs otherwise) — or, under -check-consistency, a model's history was
// rejected by its formal spec.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	semfs "repro"
	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pfs"

	// Live /metrics exporter behind the -serve-metrics flag.
	_ "repro/internal/obs/live"
	"repro/internal/report"
	"repro/internal/storage"
)

const (
	exitClean     = 0
	exitError     = 1 // load or analysis failure
	exitUsage     = 2
	exitConflicts = 3 // analysis completed and found conflicts
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		dir      = flag.String("trace", "", "trace directory written by semtrace")
		validate = flag.Bool("validate", true, "validate conflict ordering against MPI happens-before")
		maxShow  = flag.Int("show", 5, "max conflicts to print per file")
		full     = flag.Bool("report", false, "print the full per-run report (function counters, size histogram, per-file table)")
		workers  = flag.Int("workers", 0, "analysis worker pool size: 0 = GOMAXPROCS (parallel), 1 = serial reference path")
		lenient  = flag.Bool("lenient", false, "salvage valid records from truncated or corrupt rank streams instead of failing")
		ckptDir  = flag.String("checkpoint", "", "journal completed analyses to this directory (crash-safe)")
		resume   = flag.Bool("resume", false, "replay an analysis already journaled in -checkpoint instead of re-running it")
		checkSem = flag.Bool("check-consistency", false, "re-run the traced configuration under all four consistency models and verify each op history against its formal spec")
		spec     = flag.String("backend", "osdisk", "durable storage backend for -trace reads and -checkpoint state: osdisk | objstore[:delay=D,root=DIR] | flaky[:...]")
		tele     obs.CLIFlags
	)
	tele.Register(flag.CommandLine)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "semanalyze: -trace is required")
		return exitUsage
	}
	backend, err := storage.ParseSpec(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze: -backend:", err)
		return exitUsage
	}
	backend = storage.NewRetry(backend, storage.RetryOptions{})
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "semanalyze: -resume requires -checkpoint")
		return exitUsage
	}
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze:", err)
		return exitUsage
	}
	if err := tele.Start(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze:", err)
		return exitUsage
	}
	defer func() {
		if err := tele.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "semanalyze:", err)
			if code == exitClean {
				code = exitError
			}
		}
	}()
	// The load is sharded across the same worker pool as the analysis:
	// rank files decode in parallel regardless of format (columnar or v1,
	// sniffed per file).
	var tr *semfs.Trace
	if *lenient {
		var sal *semfs.Salvage
		tr, sal, err = semfs.LoadTraceLenientOn(backend, *dir, *workers)
		if sal != nil {
			fmt.Println(sal)
		}
	} else {
		tr, err = semfs.LoadTraceOn(backend, *dir, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze:", err)
		return exitError
	}

	if *checkSem {
		return checkConsistency(os.Stdout, tr)
	}

	if *ckptDir == "" {
		return analyze(os.Stdout, tr, *validate, *maxShow, *full, *workers)
	}

	// Checkpointed path: the journal key pins both the trace's identity (its
	// configuration name plus a content fingerprint) and, via the manifest,
	// the analysis flags that shape the output. The cached blob is one exit
	// code byte followed by the rendered report.
	store, err := ckpt.OpenOn(backend, *ckptDir, ckpt.Manifest{
		Kind:   "semanalyze",
		Params: fmt.Sprintf("validate=%v show=%d report=%v lenient=%v", *validate, *maxShow, *full, *lenient),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze: -checkpoint:", err)
		return exitError
	}
	defer store.Close()
	key := fmt.Sprintf("%s@%016x", tr.Meta.ConfigName(), faults.TraceFingerprint(tr))

	if *resume {
		if blob, ok := store.Lookup(key); ok && len(blob) >= 1 {
			os.Stdout.Write(blob[1:])
			return int(blob[0])
		}
	}

	var buf bytes.Buffer
	code = analyze(&buf, tr, *validate, *maxShow, *full, *workers)
	os.Stdout.Write(buf.Bytes())
	if code == exitClean || code == exitConflicts {
		// Journal only completed analyses: an error exit must re-run on
		// resume, and a failed append must not pretend to be durable.
		blob := append([]byte{byte(code)}, buf.Bytes()...)
		if err := store.Append(key, blob); err != nil {
			fmt.Fprintln(os.Stderr, "semanalyze: checkpoint:", err)
			return exitError
		}
	}
	return code
}

// checkConsistency re-runs the trace's configuration under all four
// consistency models and verifies each recorded op history against the
// model's executable formal spec. The trace supplies the configuration
// name and scale; the runs themselves are fresh (a saved trace does not
// carry the op-level payloads the checker needs).
func checkConsistency(w io.Writer, tr *semfs.Trace) int {
	name := tr.Meta.ConfigName()
	if _, ok := apps.Lookup(name); !ok {
		fmt.Fprintf(os.Stderr, "semanalyze: -check-consistency: configuration %q is not in the application registry\n", name)
		return exitError
	}
	scale := experiments.TestScale()
	if tr.Meta.Ranks > 0 {
		scale.Ranks = tr.Meta.Ranks
	}
	if tr.Meta.Steps > 0 {
		scale.Params.Steps = tr.Meta.Steps
	}
	cells, err := experiments.ConsistencyComparison(context.Background(), scale, []string{name})
	if err != nil {
		fmt.Fprintln(os.Stderr, "semanalyze: -check-consistency:", err)
		return exitError
	}
	fmt.Fprint(w, experiments.ConsistencyTable(cells))
	rejected := 0
	for _, c := range cells {
		if !c.Accepted {
			rejected++
			fmt.Fprintf(w, "\nREJECTED: %s under %v violates clause %s\n", c.Config, c.Semantics, c.Clause)
		}
	}
	if rejected > 0 {
		fmt.Fprintf(w, "\n%d of %d model histories rejected by their formal specs\n", rejected, len(cells))
		return exitConflicts
	}
	fmt.Fprintf(w, "\nall %d model histories satisfy their formal specs\n", len(cells))
	return exitClean
}

// analyze runs the full analysis pipeline over tr, writing the report to w.
// Hard failures go to stderr directly — they are never part of a cached
// report.
func analyze(w io.Writer, tr *semfs.Trace, validate bool, maxShow int, full bool, workers int) int {
	fmt.Fprintf(w, "trace: %s — %d ranks, %d records\n\n", tr.Meta.ConfigName(), tr.Meta.Ranks, tr.NumRecords())

	if full {
		fmt.Fprintln(w, report.BuildRunReport(tr).Render())
	}

	// The parallel engine is bit-identical to the serial path (see the
	// serial-equivalence tests); -workers 1 keeps the reference path for
	// debugging.
	var an *semfs.Analysis
	if workers == 1 {
		an = semfs.Analyze(tr)
	} else {
		var err error
		an, err = semfs.AnalyzeParallelCtx(context.Background(), tr, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semanalyze: %s: %v\n", tr.Meta.ConfigName(), err)
			return exitError
		}
	}

	fmt.Fprintln(w, "High-level access patterns (Table 3):")
	for _, p := range an.Patterns {
		fmt.Fprintf(w, "  %-22s (%d files)\n", p.Key(), len(p.Files))
	}
	gc, gm, gr := an.Global.Pct()
	lc, lm, lr := an.Local.Pct()
	fmt.Fprintf(w, "\nAccess-pattern mix (Figure 1):\n")
	fmt.Fprintf(w, "  global: %5.1f%% consecutive, %5.1f%% monotonic, %5.1f%% random\n", gc, gm, gr)
	fmt.Fprintf(w, "  local:  %5.1f%% consecutive, %5.1f%% monotonic, %5.1f%% random\n", lc, lm, lr)

	conflictsFound := 0
	printConflicts := func(model string, byFile map[string][]core.Conflict) {
		total := 0
		paths := make([]string, 0, len(byFile))
		for path, cs := range byFile {
			total += len(cs)
			paths = append(paths, path)
		}
		conflictsFound += total
		sort.Strings(paths) // map order would make repeated runs diff
		fmt.Fprintf(w, "\nConflicts under %s semantics: %d\n", model, total)
		for _, path := range paths {
			cs := byFile[path]
			fmt.Fprintf(w, "  %s: %d pairs\n", path, len(cs))
			for i, c := range cs {
				if i >= maxShow {
					fmt.Fprintf(w, "    ... %d more\n", len(cs)-i)
					break
				}
				fmt.Fprintf(w, "    %v\n", c)
			}
		}
	}
	printConflicts("session", an.SessionConflicts)
	printConflicts("commit", an.CommitConflicts)

	fmt.Fprintf(w, "\nMetadata operations (Figure 3): %d calls across %d distinct operations\n",
		an.Census.Total(), len(an.Census.Funcs()))
	for _, f := range an.Census.Funcs() {
		fmt.Fprintf(w, "  %-12s", f)
		for _, origin := range an.Census.Origins() {
			if n := an.Census.Counts[origin][f]; n > 0 {
				fmt.Fprintf(w, "  %s:%d", origin, n)
			}
		}
		fmt.Fprintln(w)
	}

	if len(an.MetaConflicts) > 0 {
		fmt.Fprintf(w, "\nCross-process metadata dependencies (relaxed-metadata PFSs): %d\n", len(an.MetaConflicts))
		for i, c := range an.MetaConflicts {
			if i >= maxShow {
				fmt.Fprintf(w, "  ... %d more\n", len(an.MetaConflicts)-i)
				break
			}
			fmt.Fprintf(w, "  %v\n", c)
		}
	} else {
		fmt.Fprintln(w, "\nNo cross-process metadata dependencies (safe for relaxed-metadata PFSs).")
	}

	// With validation on, only unsynchronized pairs (true races) trigger the
	// conflict exit code — synchronized conflicts are the normal shape of a
	// checkpoint protocol. Without it, any conflicting pair counts.
	racy := conflictsFound > 0
	if validate {
		unordered, err := semfs.ValidateSynchronization(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semanalyze: %s: happens-before: %v\n", tr.Meta.ConfigName(), err)
			return exitError
		}
		racy = len(unordered) > 0
		if len(unordered) == 0 {
			fmt.Fprintln(w, "\nHappens-before validation: all conflicting pairs are synchronized (race-free)")
		} else {
			fmt.Fprintf(w, "\nHappens-before validation: %d UNSYNCHRONIZED pairs (data races!)\n", len(unordered))
			for i, c := range unordered {
				if i >= maxShow {
					break
				}
				fmt.Fprintf(w, "  %v\n", c)
			}
		}
	}

	v := an.Verdict
	fmt.Fprintf(w, "\nVerdict: weakest sufficient consistency model = %s\n", v.Weakest)
	if v.NeedsPerProcessOrdering {
		fmt.Fprintln(w, "  (requires per-process ordering; unsafe on BurstFS-style PFSs)")
	}
	if v.Weakest == pfs.Session {
		fmt.Fprintln(w, "  This application can run on session-semantics (close-to-open) file systems.")
	}
	if racy {
		return exitConflicts
	}
	return exitClean
}
