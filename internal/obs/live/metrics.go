package live

import "repro/internal/obs"

// Exporter telemetry, on the default registry like every other layer's
// (DESIGN.md §9 naming: obs.live.*). The exporter observing itself is the
// point: a dashboard can tell a dead run from a dead scraper.
var (
	liveScrapes     = obs.Default().Counter("obs.live.scrapes")
	liveScrapesJSON = obs.Default().Counter("obs.live.scrapes.json")
	liveGeneration  = obs.Default().Gauge("obs.live.generation")
)
