package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects lightweight spans: named intervals with start/end
// timestamps, parent links, a lane (thread id in the Chrome trace model)
// and an optional trace ID that chains causally-related spans across
// goroutines. It is disabled by default — Start returns nil and every Span
// method is nil-safe, so instrumentation sites pay one atomic load when
// tracing is off. Enable it with SetEnabled (the CLIs do on -trace-spans).
//
// Ended spans export as Chrome trace_event "complete" events
// (ChromeTraceJSON), loadable in chrome://tracing and Perfetto; spans
// sharing a trace ID carry it in their args, so the ack→drain→publish
// chain of one WAL-routed write filters to a single causal thread.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64
	epochNS atomic.Int64 // wall clock at first enable; span times are relative

	mu    sync.Mutex
	spans []spanRecord
}

type spanRecord struct {
	id, parent uint64
	trace      uint64 // 0 = not part of a causal chain
	name, cat  string
	lane       int
	startNS    int64 // relative to epoch
	durNS      int64
}

// SetEnabled turns span collection on or off. The first enable pins the
// trace epoch; disabling keeps already-collected spans.
func (t *Tracer) SetEnabled(on bool) {
	if on {
		t.epochNS.CompareAndSwap(0, time.Now().UnixNano())
	}
	t.enabled.Store(on)
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Span is one in-flight interval. A nil Span (tracing disabled) accepts
// every method as a no-op, so call sites never branch.
type Span struct {
	t          *Tracer
	id, parent uint64
	trace      uint64
	name, cat  string
	lane       int
	startNS    int64
}

// Start opens a root span in category cat. Returns nil when the tracer is
// disabled or nil.
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{
		t:       t,
		id:      t.nextID.Add(1),
		name:    name,
		cat:     cat,
		startNS: time.Now().UnixNano() - t.epochNS.Load(),
	}
}

// StartTrace opens a root span that also begins a causal trace: the span's
// own id becomes the trace ID that children and cross-goroutine linked
// spans (StartLinked) inherit. Returns nil when the tracer is disabled.
func (t *Tracer) StartTrace(name, cat string) *Span {
	s := t.Start(name, cat)
	if s != nil {
		s.trace = s.id
	}
	return s
}

// StartLinked opens a span belonging to an existing causal trace, parented
// to the given span id — the cross-goroutine continuation a channel or
// queue hand-off needs (the WAL drainer links its publish span to the ack
// span recorded by the application thread). A zero trace makes this Start.
// Returns nil when the tracer is disabled or nil.
func (t *Tracer) StartLinked(name, cat string, trace, parent uint64) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{
		t:       t,
		id:      t.nextID.Add(1),
		parent:  parent,
		trace:   trace,
		name:    name,
		cat:     cat,
		startNS: time.Now().UnixNano() - t.epochNS.Load(),
	}
}

// TraceID returns the causal trace this span belongs to (0 when it was
// started outside a trace, or when s is nil — the disabled path — so the
// value can be stored and later passed to StartLinked unconditionally).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span's identity, usable as the parent of a linked span.
// Nil-safe; 0 when tracing is disabled.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a sub-span of s, inheriting its category, lane and trace.
// Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil || !s.t.enabled.Load() {
		return nil
	}
	return &Span{
		t:       s.t,
		id:      s.t.nextID.Add(1),
		parent:  s.id,
		trace:   s.trace,
		name:    name,
		cat:     s.cat,
		lane:    s.lane,
		startNS: time.Now().UnixNano() - s.t.epochNS.Load(),
	}
}

// OnLane assigns the span to a lane (rendered as a thread row in Perfetto;
// the worker pools use the worker index). Returns s for chaining. Nil-safe.
func (s *Span) OnLane(lane int) *Span {
	if s != nil {
		s.lane = lane
	}
	return s
}

// End closes the span and records it on the tracer. Nil-safe; a span ended
// after its tracer was disabled is still recorded (the run that opened it
// wants its full shape).
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := spanRecord{
		id: s.id, parent: s.parent, trace: s.trace,
		name: s.name, cat: s.cat, lane: s.lane,
		startNS: s.startNS,
		durNS:   time.Now().UnixNano() - s.t.epochNS.Load() - s.startNS,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Len returns the number of ended spans collected so far.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpanInfo is one ended span as tests and the live plane read it back.
type SpanInfo struct {
	ID, Parent, Trace uint64
	Name, Cat         string
	Lane              int
	StartNS, DurNS    int64
}

// Spans returns a snapshot of every ended span, in the order they ended.
func (t *Tracer) Spans() []SpanInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanInfo{ID: s.id, Parent: s.parent, Trace: s.trace,
			Name: s.name, Cat: s.cat, Lane: s.lane, StartNS: s.startNS, DurNS: s.durNS}
	}
	return out
}

// chromeEvent is one trace_event entry. Complete events ("ph":"X") carry
// their duration inline, which keeps the export single-pass. Timestamps are
// microseconds, the unit the format mandates.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTraceJSON renders every ended span as a Chrome trace_event JSON
// document ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. Spans are sorted by start time (ties by id) so the export is a
// deterministic function of the collected spans. Spans in a causal trace
// carry "trace" in their args — search for it in Perfetto to isolate one
// op's ack→drain→publish→visible chain.
func (t *Tracer) ChromeTraceJSON() ([]byte, error) {
	t.mu.Lock()
	spans := append([]spanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].startNS != spans[j].startNS {
			return spans[i].startNS < spans[j].startNS
		}
		return spans[i].id < spans[j].id
	})
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.name,
			Cat:  s.cat,
			Ph:   "X",
			TS:   float64(s.startNS) / 1e3,
			Dur:  float64(s.durNS) / 1e3,
			PID:  1,
			TID:  s.lane,
		}
		if s.parent != 0 || s.trace != 0 {
			ev.Args = map[string]any{"id": s.id}
			if s.parent != 0 {
				ev.Args["parent"] = s.parent
			}
			if s.trace != 0 {
				ev.Args["trace"] = s.trace
			}
		}
		events = append(events, ev)
	}
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":")
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(events); err != nil {
		return nil, fmt.Errorf("obs: encode trace events: %w", err)
	}
	buf.Truncate(buf.Len() - 1) // drop Encode's trailing newline
	buf.WriteString(",\"displayTimeUnit\":\"ms\"}\n")
	return buf.Bytes(), nil
}
