package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/harness"
	"repro/internal/pfs"
)

// countingExecute wraps the execute seam with a per-configuration call
// counter so resume tests can prove what actually ran.
func countingExecute(t *testing.T) *atomic.Int64 {
	t.Helper()
	var calls atomic.Int64
	withExecute(t, func(cfg *apps.Config, opts apps.Options) (*harness.Result, error) {
		calls.Add(1)
		return apps.Execute(cfg, opts)
	})
	return &calls
}

// TestResumeSkipsJournaled pins the tentpole contract: a resumed sweep
// re-executes nothing that was journaled, and the replayed results carry
// record-identical traces.
func TestResumeSkipsJournaled(t *testing.T) {
	dir := t.TempDir()
	calls := countingExecute(t)
	cfgs := []*apps.Config{okConfig("A"), okConfig("B"), okConfig("C")}
	scale := TestScale()

	store, err := OpenCheckpoint(dir, scale)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	first, err := runConfigsCtx(context.Background(), cfgs, scale, SweepOptions{Workers: 2, Checkpoint: store})
	store.Close()
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("first sweep executed %d configurations, want 3", got)
	}
	if sum := first.Summarize(); sum.Replayed != 0 || sum.Executed != 3 {
		t.Fatalf("first Summarize = %+v", sum)
	}

	calls.Store(0)
	store, err = OpenCheckpoint(dir, scale)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store.Close()
	second, err := runConfigsCtx(context.Background(), cfgs, scale,
		SweepOptions{Workers: 2, Checkpoint: store, Resume: true})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("resumed sweep executed %d configurations, want 0", got)
	}
	if sum := second.Summarize(); sum.Replayed != 3 || sum.Executed != 0 {
		t.Fatalf("resumed Summarize = %+v", sum)
	}
	if got := second.ReplayedNames(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("ReplayedNames = %v", got)
	}
	if got := second.ExecutedNames(); len(got) != 0 {
		t.Fatalf("ExecutedNames = %v, want none", got)
	}
	for _, name := range first.Ordered {
		orig, replay := first.ByName[name], second.ByName[name]
		if !replay.Replayed {
			t.Fatalf("%s not marked Replayed", name)
		}
		if !reflect.DeepEqual(orig.Trace.Meta, replay.Trace.Meta) {
			t.Fatalf("%s meta differs after replay", name)
		}
		if !reflect.DeepEqual(orig.Trace.PerRank, replay.Trace.PerRank) {
			t.Fatalf("%s trace differs after replay", name)
		}
	}
}

// TestTimedOutConfigNotJournaled: a configuration that hits the per-task
// timeout must not be journaled — and must actually re-run on resume.
func TestTimedOutConfigNotJournaled(t *testing.T) {
	dir := t.TempDir()
	unblock := make(chan struct{})
	defer close(unblock)
	var hangDone atomic.Bool
	var hangRuns atomic.Int64
	withExecute(t, func(cfg *apps.Config, opts apps.Options) (*harness.Result, error) {
		if cfg.App == "HangApp" {
			hangRuns.Add(1)
			if !hangDone.Load() {
				<-unblock
				return nil, errors.New("unblocked late")
			}
		}
		return apps.Execute(cfg, opts)
	})
	cfgs := []*apps.Config{okConfig("HangApp"), okConfig("OkOne")}
	scale := TestScale()

	store, err := OpenCheckpoint(dir, scale)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runConfigsCtx(context.Background(), cfgs, scale,
		SweepOptions{Workers: 2, TaskTimeout: 50 * time.Millisecond, Checkpoint: store})
	if err == nil {
		t.Fatal("expected the timed-out configuration to error")
	}
	if got := store.Keys(); !reflect.DeepEqual(got, []string{"OkOne"}) {
		t.Fatalf("journal holds %v, want only [OkOne] — timed-out work must not be journaled", got)
	}
	store.Close()

	// On resume the hung configuration runs again (now unblocked) while the
	// journaled one is replayed without executing.
	hangDone.Store(true)
	store, err = OpenCheckpoint(dir, scale)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r, err := runConfigsCtx(context.Background(), cfgs, scale,
		SweepOptions{Workers: 2, TaskTimeout: time.Minute, Checkpoint: store, Resume: true})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if got := hangRuns.Load(); got != 2 {
		t.Fatalf("HangApp executed %d times, want 2 (timeout run + resume re-run)", got)
	}
	if !r.ByName["OkOne"].Replayed || r.ByName["HangApp"].Replayed {
		t.Fatalf("Replayed flags wrong: OkOne=%v HangApp=%v",
			r.ByName["OkOne"].Replayed, r.ByName["HangApp"].Replayed)
	}
	if sum := r.Summarize(); sum.Replayed != 1 || sum.Executed != 1 {
		t.Fatalf("Summarize = %+v", sum)
	}
	if got := store.Keys(); !reflect.DeepEqual(got, []string{"HangApp", "OkOne"}) {
		t.Fatalf("journal after resume holds %v", got)
	}
}

// TestCheckpointScaleMismatch: the manifest pins the sweep's identity, so a
// resume against a store written at a different scale fails loudly.
func TestCheckpointScaleMismatch(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCheckpoint(dir, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	other := TestScale()
	other.Ranks *= 2
	if _, err := OpenCheckpoint(dir, other); !errors.Is(err, ckpt.ErrMismatch) {
		t.Fatalf("OpenCheckpoint at a different scale: err = %v, want ErrMismatch", err)
	}
	other = TestScale()
	other.Semantics = pfs.Session // a different consistency model is a different run
	if _, err := OpenCheckpoint(dir, other); !errors.Is(err, ckpt.ErrMismatch) {
		t.Fatalf("OpenCheckpoint under different semantics: err = %v, want ErrMismatch", err)
	}
}
