package silo

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func runDump(t *testing.T, ranks, ppn, files int) *harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: ranks, PPN: ppn, Semantics: pfs.Strong},
		recorder.Meta{App: "silo-test", Library: "Silo"},
		func(ctx *harness.Ctx) error {
			return Dump(ctx.MPI, ctx.OS, ctx.Tracer, "/dump000",
				[]string{"pressure", "density"}, Options{Files: files, BlockSize: 256})
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMultiFileLayout(t *testing.T) {
	res := runDump(t, 8, 4, 2) // 8 ranks over 2 files → groups of 4
	for fidx := 0; fidx < 2; fidx++ {
		path := fmt.Sprintf("/dump000.%03d.silo", fidx)
		info, _, err := res.FS.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// toc + 4 mesh blocks + 2 vars × 4 blocks = 384 + 4*256 + 8*256
		want := int64(384 + 4*256 + 8*256)
		if info.Size != want {
			t.Fatalf("%s size %d, want %d", path, info.Size, want)
		}
	}
}

func TestBatonSerializesGroup(t *testing.T) {
	res := runDump(t, 4, 4, 1) // one file, 4 ranks, baton through all
	// Writes to the shared file must be time-ordered by rank (baton order)
	// for the mesh blocks.
	type w struct {
		rank int32
		t    uint64
	}
	var meshWrites []w
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.Func == recorder.FuncPwrite && r.Arg(1) == 256 && r.Arg(2) >= 384 && r.Arg(2) < 384+4*256
	}) {
		meshWrites = append(meshWrites, w{r.Rank, r.TStart})
	}
	if len(meshWrites) != 4 {
		t.Fatalf("found %d mesh writes, want 4", len(meshWrites))
	}
	for i := 1; i < len(meshWrites); i++ {
		if meshWrites[i].t < meshWrites[i-1].t {
			t.Fatalf("baton order violated: %v", meshWrites)
		}
	}
}

func TestRootRewritesTOCSameSession(t *testing.T) {
	res := runDump(t, 4, 2, 2)
	// Each group root must write offset 0 at least twice, with the first
	// two writes inside one open session (DBCreate TOC + directory update):
	// the WAW-S mechanism.
	perRank := map[int32]int{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.IsWriteOp() && r.Arg(2) == 0
	}) {
		perRank[r.Rank]++
	}
	if len(perRank) != 2 {
		t.Fatalf("TOC written by %d ranks, want the 2 group roots: %v", len(perRank), perRank)
	}
	for rank, n := range perRank {
		if n < 2 {
			t.Fatalf("rank %d wrote TOC %d times, want >= 2", rank, n)
		}
	}
}

func TestStridedPerRankOffsets(t *testing.T) {
	res := runDump(t, 4, 4, 1)
	// Rank 1's writes in the shared file: mesh at 384+256, var0 at
	// 384+4*256+256, var1 at 384+4*256+4*256+256 — strided, not consecutive.
	var offs []int64
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.Rank == 1 && r.IsWriteOp()
	}) {
		offs = append(offs, r.Arg(2))
	}
	want := []int64{384 + 256, 384 + 4*256 + 256, 384 + 4*256 + 4*256 + 256}
	if len(offs) != len(want) {
		t.Fatalf("rank 1 writes %v, want %v", offs, want)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("rank 1 writes %v, want %v", offs, want)
		}
	}
}

func TestSiloLayerRecords(t *testing.T) {
	res := runDump(t, 2, 2, 1)
	seen := map[recorder.Func]bool{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.Layer == recorder.LayerSilo }) {
		seen[r.Func] = true
	}
	for _, fn := range []recorder.Func{
		recorder.FuncDBCreate, recorder.FuncDBOpen,
		recorder.FuncDBPutQuadmesh, recorder.FuncDBPutQuadvar, recorder.FuncDBMkDir,
	} {
		if !seen[fn] {
			t.Errorf("missing Silo record %v", fn)
		}
	}
}

func TestSingleRankGroups(t *testing.T) {
	res := runDump(t, 2, 1, 2) // every rank is its own group root
	for fidx := 0; fidx < 2; fidx++ {
		path := fmt.Sprintf("/dump000.%03d.silo", fidx)
		if !res.FS.Exists(path) {
			t.Fatalf("%s missing", path)
		}
	}
}
