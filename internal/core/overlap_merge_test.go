package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestMergeVariantMatchesAlgorithm1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(80)
		ivs := make([]Interval, n)
		for i := range ivs {
			os := int64(rng.Intn(400))
			ivs[i] = iv(uint64(rng.Intn(1000)), int32(rng.Intn(6)), os, os+int64(rng.Intn(80)+1), rng.Intn(2) == 0)
		}
		sortPairs := func(ps []OverlapPair) []OverlapPair {
			out := append([]OverlapPair(nil), ps...)
			sortPairSlice(out)
			return out
		}
		var p1, p2 []OverlapPair
		t1 := DetectOverlaps(ivs, func(p OverlapPair) { p1 = append(p1, p) })
		t2 := DetectOverlapsMerge(ivs, func(p OverlapPair) { p2 = append(p2, p) })
		if !reflect.DeepEqual(sortPairs(p1), sortPairs(p2)) {
			t.Fatalf("trial %d: pair sets differ:\n sort  %v\n merge %v", trial, sortPairs(p1), sortPairs(p2))
		}
		if len(t1) != len(t2) {
			t.Fatalf("trial %d: tables differ: %v vs %v", trial, t1, t2)
		}
		for k, v := range t1 {
			if t2[k] != v {
				t.Fatalf("trial %d: table[%v] = %d vs %d", trial, k, t1[k], t2[k])
			}
		}
	}
}

func sortPairSlice(ps []OverlapPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b OverlapPair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

func TestMergeVariantEmptyAndSingleRank(t *testing.T) {
	if got := DetectOverlapsMerge(nil, nil); len(got) != 0 {
		t.Fatal("empty input")
	}
	ivs := []Interval{
		iv(1, 0, 0, 10, true),
		iv(2, 0, 5, 15, true),
		iv(3, 0, 20, 30, false),
	}
	var pairs []OverlapPair
	table := DetectOverlapsMerge(ivs, func(p OverlapPair) { pairs = append(pairs, p) })
	if table[rankKey(0, 0)] != 1 || len(pairs) != 1 {
		t.Fatalf("single-rank overlap: table=%v pairs=%v", table, pairs)
	}
}
