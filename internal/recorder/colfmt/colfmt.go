// Package colfmt is the columnar on-disk trace format (SEMFSCOL1), the
// scalable counterpart to the record-framed SEMFSTR1 streams in package
// recorder. Real HPC tracing produces hundreds of millions of operations per
// run (Recorder, IPDPSW 2020); loading such traces through a heap-per-record
// decoder dominates analysis time and memory. Columnar streams fix both
// ends: the encoder stores each rank's records as column blocks —
// delta-encoded timestamps, dictionary-coded paths, packed args — and the
// decoder yields records zero-copy from the (memory-mapped) column bytes
// through a cursor, so analysis can consume a trace without materializing
// []Record at all.
//
// Stream layout, one file per rank:
//
//	header:  magic "SEMFSCOL1" (9 bytes)
//	         uvarint rank
//	         uvarint declared record count   (exact salvage accounting)
//	blocks:  data blocks, then one dictionary block, each framed as
//	         u8 kind | u32le payload length | u32le CRC-32C | payload
//	trailer: u64le dictionary-block offset | u64le record count |
//	         end magic "SEMFSCE1"
//
// Data block payload (kind 1), holding up to BlockRecords records:
//
//	uvarint count                       records in this block
//	uvarint new                         dictionary entries first used here
//	new × (uvarint len | bytes)         incremental dictionary delta
//	8 column segments, each prefixed with its uvarint byte length:
//	  layers   count × u8
//	  funcs    count × uvarint
//	  tstarts  first uvarint absolute, rest varint delta from predecessor
//	  durs     count × uvarint          (TEnd − TStart)
//	  paths    count × uvarint          (0 = none, k ≥ 1 = dict[k−1])
//	  paths2   count × uvarint
//	  nargs    count × uvarint
//	  args     Σ nargs × varint
//
// Dictionary block payload (kind 2): uvarint count + count × (uvarint len |
// bytes), in first-use order. The dictionary therefore exists twice: the
// footer copy is the fast path (one read, each string interned once, any
// block decodable immediately), and the per-block deltas are the salvage
// path — a torn tail that takes the footer with it still decodes every
// intact data block by replaying the deltas in order. Every frame carries
// its own length and CRC-32C, so a torn or corrupt tail salvages per-block
// instead of per-stream: the valid block prefix is always recoverable.
package colfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/recorder"
)

// Magic identifies a columnar rank stream; recorder's dir loaders sniff it
// against the v1 traceMagic.
const Magic = "SEMFSCOL1"

// endMagic terminates an intact stream; its absence marks a torn tail.
const endMagic = "SEMFSCE1"

// Frame kinds.
const (
	kindData = 1
	kindDict = 2
)

// Wire limits, mirroring the v1 decoder's forged-header bounds.
const (
	maxRank      = 1 << 20
	maxRecords   = 1 << 30
	maxPayload   = 1 << 28
	maxString    = 1 << 20
	maxArgs      = 64
	frameHdrLen  = 1 + 4 + 4 // kind + length + crc
	trailerLen   = 8 + 8 + len(endMagic)
	streamHdrMin = len(Magic) + 2 // magic + at least 1 byte rank + 1 byte count
	defaultBlock = 4096
	colSegments  = 8
)

// castagnoli is the CRC-32C table every frame checksum uses — the same
// polynomial the ckpt journal and WAL frames use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeOptions tunes the encoder.
type EncodeOptions struct {
	// BlockRecords is the record count per data block (default 4096). Small
	// blocks salvage at finer grain; large blocks amortize framing better.
	BlockRecords int
}

func (o EncodeOptions) blockRecords() int {
	if o.BlockRecords <= 0 {
		return defaultBlock
	}
	return o.BlockRecords
}

// streamEncoder carries the per-stream dictionary and the reusable column
// buffers across blocks.
type streamEncoder struct {
	w       *countingWriter
	dict    map[string]uint64 // string -> index (0-based)
	order   []string          // first-use order
	newStrs []string          // strings first used in the current block
	cols    [colSegments][]byte
	payload []byte
	scratch [binary.MaxVarintLen64]byte
	prevT   uint64
	hits    int64 // records whose path was already in the dictionary
}

// countingWriter tracks the absolute offset so the trailer can point at the
// dictionary block.
type countingWriter struct {
	w   *bufio.Writer
	off uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.off += uint64(n)
	return n, err
}

// EncodeStream writes one rank's records as a columnar stream. The input
// slice is not retained.
func EncodeStream(w io.Writer, rank int, records []recorder.Record, opts EncodeOptions) error {
	if rank < 0 || rank >= maxRank {
		return fmt.Errorf("colfmt: rank %d out of range", rank)
	}
	enc := &streamEncoder{
		w:    &countingWriter{w: bufio.NewWriterSize(w, 1<<16)},
		dict: make(map[string]uint64),
	}
	if _, err := enc.w.Write([]byte(Magic)); err != nil {
		return err
	}
	if err := enc.writeUvarint(enc.w, uint64(rank)); err != nil {
		return err
	}
	if err := enc.writeUvarint(enc.w, uint64(len(records))); err != nil {
		return err
	}
	per := opts.blockRecords()
	for start := 0; start < len(records); start += per {
		end := start + per
		if end > len(records) {
			end = len(records)
		}
		if err := enc.writeDataBlock(records[start:end]); err != nil {
			return err
		}
	}
	dictOff := enc.w.off
	if err := enc.writeDictBlock(); err != nil {
		return err
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:], dictOff)
	binary.LittleEndian.PutUint64(trailer[8:], uint64(len(records)))
	copy(trailer[16:], endMagic)
	if _, err := enc.w.Write(trailer[:]); err != nil {
		return err
	}
	blocksEncoded.Add(int64((len(records)+per-1)/per) + 1)
	dictEntries.Add(int64(len(enc.order)))
	dictHits.Add(enc.hits)
	return enc.w.w.Flush()
}

func (enc *streamEncoder) writeUvarint(w io.Writer, v uint64) error {
	n := binary.PutUvarint(enc.scratch[:], v)
	_, err := w.Write(enc.scratch[:n])
	return err
}

// ref returns the wire path reference for s (0 = none), interning new
// strings into the dictionary and the current block's delta section.
func (enc *streamEncoder) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if idx, ok := enc.dict[s]; ok {
		enc.hits++
		return idx + 1
	}
	idx := uint64(len(enc.order))
	enc.dict[s] = idx
	enc.order = append(enc.order, s)
	enc.newStrs = append(enc.newStrs, s)
	return idx + 1
}

// column append helpers over the reusable buffers.
func (enc *streamEncoder) putU8(col int, v byte) { enc.cols[col] = append(enc.cols[col], v) }
func (enc *streamEncoder) putUvarint(col int, v uint64) {
	n := binary.PutUvarint(enc.scratch[:], v)
	enc.cols[col] = append(enc.cols[col], enc.scratch[:n]...)
}
func (enc *streamEncoder) putVarint(col int, v int64) {
	n := binary.PutVarint(enc.scratch[:], v)
	enc.cols[col] = append(enc.cols[col], enc.scratch[:n]...)
}

// Column indices into streamEncoder.cols, in wire order.
const (
	colLayers = iota
	colFuncs
	colTStarts
	colDurs
	colPaths
	colPaths2
	colNArgs
	colArgs
)

func (enc *streamEncoder) writeDataBlock(records []recorder.Record) error {
	for i := range enc.cols {
		enc.cols[i] = enc.cols[i][:0]
	}
	enc.newStrs = enc.newStrs[:0]
	for i := range records {
		r := &records[i]
		if r.TEnd < r.TStart {
			return fmt.Errorf("colfmt: record has TEnd < TStart")
		}
		if len(r.Args) > maxArgs {
			return fmt.Errorf("colfmt: record has %d args (max %d)", len(r.Args), maxArgs)
		}
		enc.putU8(colLayers, byte(r.Layer))
		enc.putUvarint(colFuncs, uint64(r.Func))
		if i == 0 {
			enc.putUvarint(colTStarts, r.TStart)
		} else {
			// Two's-complement delta round-trips any u64 pair; sorted
			// streams make it a one-byte varint almost always.
			enc.putVarint(colTStarts, int64(r.TStart-enc.prevT))
		}
		enc.prevT = r.TStart
		enc.putUvarint(colDurs, r.TEnd-r.TStart)
		enc.putUvarint(colPaths, enc.ref(r.Path))
		enc.putUvarint(colPaths2, enc.ref(r.Path2))
		enc.putUvarint(colNArgs, uint64(len(r.Args)))
		for _, a := range r.Args {
			enc.putVarint(colArgs, a)
		}
	}
	enc.payload = enc.payload[:0]
	enc.payload = binary.AppendUvarint(enc.payload, uint64(len(records)))
	enc.payload = binary.AppendUvarint(enc.payload, uint64(len(enc.newStrs)))
	for _, s := range enc.newStrs {
		enc.payload = binary.AppendUvarint(enc.payload, uint64(len(s)))
		enc.payload = append(enc.payload, s...)
	}
	for _, col := range enc.cols {
		enc.payload = binary.AppendUvarint(enc.payload, uint64(len(col)))
		enc.payload = append(enc.payload, col...)
	}
	return enc.writeFrame(kindData, enc.payload)
}

func (enc *streamEncoder) writeDictBlock() error {
	enc.payload = enc.payload[:0]
	enc.payload = binary.AppendUvarint(enc.payload, uint64(len(enc.order)))
	for _, s := range enc.order {
		enc.payload = binary.AppendUvarint(enc.payload, uint64(len(s)))
		enc.payload = append(enc.payload, s...)
	}
	return enc.writeFrame(kindDict, enc.payload)
}

func (enc *streamEncoder) writeFrame(kind byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("colfmt: block payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	var hdr [frameHdrLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, castagnoli))
	if _, err := enc.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := enc.w.Write(payload)
	return err
}
