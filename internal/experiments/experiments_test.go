package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func testResults(t *testing.T) *Results {
	t.Helper()
	r, err := RunAll(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunAllCoversRegistry(t *testing.T) {
	r := testResults(t)
	if len(r.Ordered) != 25 || len(r.ByName) != 25 {
		t.Fatalf("got %d configs", len(r.Ordered))
	}
	for _, name := range r.Ordered {
		if r.ByName[name].Trace.NumRecords() == 0 {
			t.Errorf("%s produced an empty trace", name)
		}
	}
}

func TestRenderedArtifactsNonTrivial(t *testing.T) {
	r := testResults(t)
	t3 := Table3(r)
	if !strings.Contains(t3, "FLASH-fbs") || !strings.Contains(t3, "Strided Cyclic") {
		t.Fatalf("Table3 incomplete:\n%s", t3)
	}
	t4 := Table4(r)
	if strings.Count(t4, "conflicts disappear") != 2 { // both FLASH variants
		t.Fatalf("Table4 FLASH commit result wrong:\n%s", t4)
	}
	fig1, csv := Figure1(r)
	if len(strings.Split(csv, "\n")) < 50 { // 25 configs × 2 levels + header
		t.Fatalf("Figure1 CSV too small:\n%s", csv)
	}
	if !strings.Contains(fig1, "LBANN") {
		t.Fatal("Figure1 text missing configs")
	}
	panels := Figure2(r)
	if len(panels) != 10 { // 6 CSV series + 4 SVG renderings
		t.Fatalf("Figure2 has %d panels, want 10", len(panels))
	}
	for name, content := range panels {
		if strings.HasSuffix(name, ".svg") {
			if !strings.HasPrefix(content, "<svg") {
				t.Errorf("panel %s is not an SVG", name)
			}
			continue
		}
		if len(strings.Split(content, "\n")) < 3 {
			t.Errorf("panel %s nearly empty", name)
		}
	}
	fig3 := Figure3(r)
	for _, fn := range []string{"getcwd", "unlink", "ftruncate", "lstat"} {
		if !strings.Contains(fig3, fn) {
			t.Errorf("Figure3 missing %s column", fn)
		}
	}
	// Operations the paper reports unused by every application.
	for _, fn := range []string{"rename", "chown", "utime"} {
		if strings.Contains(fig3, fn) {
			t.Errorf("Figure3 should not contain %s (unused by all apps)", fn)
		}
	}
	verdicts := VerdictsReport(r)
	if strings.Count(verdicts, "commit") != 2 { // the two FLASH variants
		t.Fatalf("verdicts: expected exactly the FLASH variants to need commit:\n%s", verdicts)
	}
}

func TestRunOne(t *testing.T) {
	res, err := RunOne("GTC", TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Meta.App != "GTC" {
		t.Fatalf("meta = %+v", res.Trace.Meta)
	}
	if _, err := RunOne("nope", TestScale()); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestPFSBenchShapes(t *testing.T) {
	var results []BenchResult
	for _, workload := range PFSBenchWorkloads() {
		byModel := map[pfs.Semantics]BenchResult{}
		for _, sem := range pfs.AllSemantics() {
			r, err := PFSBench(workload, sem, 8, 2, 2048, 8)
			if err != nil {
				t.Fatal(err)
			}
			byModel[sem] = r
			results = append(results, r)
		}
		// The paper's motivating shape: strong semantics is the most
		// expensive model on every workload (per-op lock round trips).
		for _, sem := range []pfs.Semantics{pfs.Commit, pfs.Session, pfs.Eventual} {
			if byModel[pfs.Strong].ElapsedNS <= byModel[sem].ElapsedNS {
				t.Errorf("%s: strong (%d ns) not slower than %v (%d ns)",
					workload, byModel[pfs.Strong].ElapsedNS, sem, byModel[sem].ElapsedNS)
			}
		}
		if byModel[pfs.Strong].LockAcquires == 0 {
			t.Errorf("%s: no lock acquisitions under strong", workload)
		}
		if byModel[pfs.Commit].LockAcquires != 0 {
			t.Errorf("%s: commit semantics acquired locks", workload)
		}
		// Shared-file workloads contend; file-per-process does not.
		if workload == "nn-filepp" && byModel[pfs.Strong].LockContended != 0 {
			t.Errorf("file-per-process should have zero contended acquisitions, got %d",
				byModel[pfs.Strong].LockContended)
		}
		if workload == "n1-strided" && byModel[pfs.Strong].LockContended == 0 {
			t.Error("shared-file workload should show contended acquisitions")
		}
	}
	table := PFSBenchTable(results)
	if !strings.Contains(table, "n1-strided") || !strings.Contains(table, "eventual") {
		t.Fatalf("bench table incomplete:\n%s", table)
	}
	if _, err := PFSBench("bogus", pfs.Strong, 4, 2, 1024, 2); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStaticArtifacts(t *testing.T) {
	if s := Table1(); !strings.Contains(s, "Lustre") {
		t.Fatal("Table1 empty")
	}
	if s := Table5(); !strings.Contains(s, "FLASH-fbs") || !strings.Contains(s, "Sedov") {
		t.Fatal("Table5 incomplete")
	}
	d := DefaultScale()
	if d.Ranks != 64 || d.PPN != 8 {
		t.Fatalf("DefaultScale = %+v", d)
	}
}

func TestMetaTableArtifact(t *testing.T) {
	r := testResults(t)
	s := MetaTable(r)
	if !strings.Contains(s, "LAMMPS-ADIOS") || !strings.Contains(s, "MACSio-Silo") {
		t.Fatalf("MetaTable incomplete:\n%s", s)
	}
	// Exactly the two configurations with cross-process metadata deps carry
	// marks.
	marked := 0
	for _, line := range strings.Split(s, "\n") {
		for _, field := range strings.Fields(line) {
			if field == "x" {
				marked++
				break
			}
		}
	}
	if marked != 2 {
		t.Fatalf("%d marked rows, want 2:\n%s", marked, s)
	}
}

// failingConfig fabricates a registry entry whose every rank errors out —
// the fixture for the no-fail-fast contract of runConfigs.
func failingConfig(name string) *apps.Config {
	return &apps.Config{
		App: name, Library: "POSIX",
		Description: "synthetic always-failing configuration",
		Run: func(ctx *harness.Ctx, p apps.Params) error {
			return fmt.Errorf("%s: injected failure on rank %d", name, ctx.Rank)
		},
	}
}

func okConfig(name string) *apps.Config {
	return &apps.Config{
		App: name, Library: "POSIX",
		Description: "synthetic trivial configuration",
		Run: func(ctx *harness.Ctx, p apps.Params) error {
			fd, err := ctx.OS.Open("/ok-"+name, recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			if _, err := ctx.OS.Pwrite(fd, make([]byte, 64), int64(ctx.Rank)*64); err != nil {
				return err
			}
			return ctx.OS.Close(fd)
		},
	}
}

// TestRunConfigsCollectsAllErrors pins the fail-fast fix: one failing
// configuration must not abort the sweep, and *every* failure must be
// reported, not just the first.
func TestRunConfigsCollectsAllErrors(t *testing.T) {
	cfgs := []*apps.Config{
		failingConfig("FailAlpha"),
		okConfig("OkOne"),
		failingConfig("FailBeta"),
		okConfig("OkTwo"),
	}
	for _, workers := range []int{1, 3} {
		r, err := runConfigs(cfgs, TestScale(), workers)
		if err == nil {
			t.Fatalf("workers=%d: expected a joined error", workers)
		}
		for _, want := range []string{"FailAlpha: injected failure", "FailBeta: injected failure"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: joined error missing %q:\n%v", workers, want, err)
			}
		}
		if len(r.Errs) != 2 || r.Errs["FailAlpha"] == nil || r.Errs["FailBeta"] == nil {
			t.Fatalf("workers=%d: Errs = %v", workers, r.Errs)
		}
		// Survivors keep registry order and carry real traces.
		if len(r.Ordered) != 2 || r.Ordered[0] != "OkOne" || r.Ordered[1] != "OkTwo" {
			t.Fatalf("workers=%d: Ordered = %v", workers, r.Ordered)
		}
		for _, name := range r.Ordered {
			if r.ByName[name].Trace.NumRecords() == 0 {
				t.Errorf("workers=%d: %s has an empty trace", workers, name)
			}
		}
	}
}

// TestRunAllWorkersMatchesSerial checks that the parallel registry sweep
// produces byte-identical traces to the serial one (each run is a
// self-contained deterministic simulation).
func TestRunAllWorkersMatchesSerial(t *testing.T) {
	serial, err := RunAllWorkers(TestScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllWorkers(TestScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Ordered, par.Ordered) {
		t.Fatalf("Ordered differs:\n%v\n%v", serial.Ordered, par.Ordered)
	}
	for _, name := range serial.Ordered {
		if !reflect.DeepEqual(serial.ByName[name].Trace, par.ByName[name].Trace) {
			t.Errorf("%s: parallel trace differs from serial", name)
		}
	}
}
