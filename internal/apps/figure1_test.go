package apps

import (
	"testing"

	"repro/internal/core"
)

// TestFigure1ShapeInvariants locks the qualitative Figure 1 claims into the
// test suite: the per-application local/global pattern mixes that Section
// 6.2 reports. Thresholds are generous (shapes, not decimals).
func TestFigure1ShapeInvariants(t *testing.T) {
	type bound struct {
		config string
		check  func(t *testing.T, global, local core.PatternMix)
	}
	pct := func(m core.PatternMix) (float64, float64, float64) { return m.Pct() }

	cases := []bound{
		{"LBANN", func(t *testing.T, g, l core.PatternMix) {
			// §6.2.3: locally 100% consecutive, globally largely random.
			lc, _, _ := pct(l)
			_, _, gr := pct(g)
			if lc != 100 {
				t.Errorf("LBANN local consecutive = %.1f%%, want 100%%", lc)
			}
			if gr < 40 {
				t.Errorf("LBANN global random = %.1f%%, want >40%%", gr)
			}
		}},
		{"LAMMPS-POSIX", func(t *testing.T, g, l core.PatternMix) {
			// §6.2.1: all accesses consecutive at both levels via POSIX.
			gc, _, _ := pct(g)
			lc, _, _ := pct(l)
			if gc != 100 || lc != 100 {
				t.Errorf("LAMMPS-POSIX mixes = %.1f/%.1f%%, want 100/100", gc, lc)
			}
		}},
		{"LAMMPS-HDF5", func(t *testing.T, g, l core.PatternMix) {
			// §6.2.1: the library introduces a random fraction.
			_, _, gr := pct(g)
			if gr == 0 {
				t.Error("LAMMPS-HDF5 should show library-metadata randomness")
			}
		}},
		{"FLASH-nofbs", func(t *testing.T, g, l core.PatternMix) {
			// §6.2.2: ~50% random globally; single rank mostly monotonic.
			_, _, gr := pct(g)
			if gr < 30 {
				t.Errorf("FLASH-nofbs global random = %.1f%%, want >30%%", gr)
			}
			_, lm, _ := pct(l)
			if lm < 60 {
				t.Errorf("FLASH-nofbs local monotonic = %.1f%%, want >60%%", lm)
			}
		}},
		{"FLASH-fbs", func(t *testing.T, g, l core.PatternMix) {
			// Collective I/O: much less random than independent at the
			// local level.
			_, _, lr := pct(l)
			if lr > 20 {
				t.Errorf("FLASH-fbs local random = %.1f%%, want <20%%", lr)
			}
		}},
		{"GTC", func(t *testing.T, g, l core.PatternMix) {
			gc, _, _ := pct(g)
			if gc != 100 {
				t.Errorf("GTC global consecutive = %.1f%%, want 100%%", gc)
			}
		}},
		{"NWChem", func(t *testing.T, g, l core.PatternMix) {
			// File-per-process: global ≈ local ≈ consecutive (§6.2).
			gc, _, _ := pct(g)
			if gc < 95 {
				t.Errorf("NWChem global consecutive = %.1f%%, want >95%%", gc)
			}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.config, func(t *testing.T) {
			t.Parallel()
			res := execute(t, c.config, Options{Ranks: 32, PPN: 4})
			fas := core.Extract(res.Trace)
			c.check(t, core.GlobalPattern(fas), core.LocalPattern(fas))
		})
	}
}
