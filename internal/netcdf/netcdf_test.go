package netcdf

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func run1(t *testing.T, body func(ctx *harness.Ctx) error) *harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: 1, Semantics: pfs.Strong},
		recorder.Meta{App: "nc-test", Library: "NetCDF"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecordRoundTrip(t *testing.T) {
	run1(t, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.OS, ctx.Tracer, "/dump.nc")
		if err != nil {
			return err
		}
		v, err := f.DefVar("coords", 48)
		if err != nil {
			return err
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			rec := make([]byte, 48)
			for j := range rec {
				rec[j] = byte(i)
			}
			if err := f.PutRecord(v, -1, rec); err != nil {
				return err
			}
		}
		if f.NumRecs() != 3 {
			ctx.Failf("numrecs = %d", f.NumRecs())
		}
		got, err := f.GetRecord(v, 1)
		if err != nil {
			return err
		}
		if got[0] != 1 || got[47] != 1 {
			ctx.Failf("record 1 content wrong: %v", got[:4])
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestNumrecsRewriteEachAppend(t *testing.T) {
	// The WAW-S mechanism: every appended record rewrites the header's
	// numrecs field at the same offset.
	res := run1(t, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.OS, ctx.Tracer, "/d.nc")
		if err != nil {
			return err
		}
		v, _ := f.DefVar("x", 16)
		if err := f.EndDef(); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if err := f.PutRecord(v, -1, make([]byte, 16)); err != nil {
				return err
			}
		}
		return f.Close()
	})
	n := 0
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.Func == recorder.FuncPwrite && r.Arg(2) == numrecsOff && r.Arg(1) == numrecsLen
	}) {
		_ = r
		n++
	}
	if n != 5 {
		t.Fatalf("numrecs rewritten %d times, want 5", n)
	}
}

func TestModeEnforcement(t *testing.T) {
	run1(t, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.OS, ctx.Tracer, "/m.nc")
		if err != nil {
			return err
		}
		v, _ := f.DefVar("x", 8)
		if err := f.PutRecord(v, -1, make([]byte, 8)); err == nil {
			ctx.Failf("PutRecord in define mode accepted")
		}
		if err := f.EndDef(); err != nil {
			return err
		}
		if _, err := f.DefVar("y", 8); err == nil {
			ctx.Failf("DefVar outside define mode accepted")
		}
		if err := f.EndDef(); err == nil {
			ctx.Failf("double EndDef accepted")
		}
		if err := f.PutRecord(v, -1, make([]byte, 4)); err == nil {
			ctx.Failf("wrong record size accepted")
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := f.Close(); err == nil {
			ctx.Failf("double close accepted")
		}
		return ctx.Failures()
	})
}

func TestInterleavedVarLayout(t *testing.T) {
	run1(t, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.OS, ctx.Tracer, "/i.nc")
		if err != nil {
			return err
		}
		a, _ := f.DefVar("a", 8)
		b, _ := f.DefVar("b", 8)
		if err := f.EndDef(); err != nil {
			return err
		}
		f.PutRecord(a, 0, []byte("AAAAAAAA"))
		f.PutRecord(b, 0, []byte("BBBBBBBB"))
		f.PutRecord(a, 1, []byte("aaaaaaaa"))
		f.PutRecord(b, 1, []byte("bbbbbbbb"))
		gotA1, _ := f.GetRecord(a, 1)
		gotB0, _ := f.GetRecord(b, 0)
		if string(gotA1) != "aaaaaaaa" || string(gotB0) != "BBBBBBBB" {
			ctx.Failf("layout broken: a1=%q b0=%q", gotA1, gotB0)
		}
		f.Sync()
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestOpenReadsHeader(t *testing.T) {
	res := run1(t, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.OS, ctx.Tracer, "/h.nc")
		if err != nil {
			return err
		}
		v, _ := f.DefVar("x", 8)
		f.EndDef()
		f.PutRecord(v, -1, make([]byte, 8))
		if err := f.Close(); err != nil {
			return err
		}
		f2, err := Open(ctx.OS, ctx.Tracer, "/h.nc")
		if err != nil {
			return err
		}
		return f2.Close()
	})
	found := false
	for range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.Func == recorder.FuncNCOpen
	}) {
		found = true
	}
	if !found {
		t.Fatal("nc_open record missing")
	}
}
