package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestFlightRingWrap: a full ring overwrites oldest-first and Events returns
// the surviving window sorted by sequence.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetEnabled(true)
	class := FlightClassFor("test.wrap")
	for i := 1; i <= 20; i++ {
		f.Record(class, int32(i), uint64(i), int64(i), int64(-i))
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("ring of 8 holds %d events", len(evs))
	}
	for i, ev := range evs {
		want := uint64(13 + i) // 20 records, last 8 survive
		if ev.Seq != want {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.Class != "test.wrap" || ev.Rank != int32(ev.Seq) ||
			ev.Trace != ev.Seq || ev.A != int64(ev.Seq) || ev.B != -int64(ev.Seq) {
			t.Errorf("event %d: payload mismatch: %+v", i, ev)
		}
	}
}

// TestFlightSizeRounding pins the power-of-two capacity rounding.
func TestFlightSizeRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 8}, {8, 8}, {9, 16}, {100, 128}} {
		f := NewFlightRecorder(c.ask)
		if got := len(f.slots); got != c.want {
			t.Errorf("NewFlightRecorder(%d): capacity %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestFlightConcurrentRecord hammers Record from many goroutines while a
// reader snapshots, under -race: every returned event must be individually
// consistent (A encodes rank and iteration; B repeats the iteration, so a
// torn slot mixing two writers fails the invariant).
func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(64)
	f.SetEnabled(true)
	class := FlightClassFor("test.concurrent")
	const goroutines, iters = 8, 500

	var writers sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				f.Record(class, int32(w), 0, int64(w)*1000+int64(i), int64(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range f.Events() {
				if ev.A != int64(ev.Rank)*1000+ev.B {
					t.Errorf("torn event escaped: %+v", ev)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("full ring returned %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("quiescent ring has a sequence gap: %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestFlightDumpRoundTrip: encode -> write -> load preserves every event,
// including class names, ranks, traces and payloads.
func TestFlightDumpRoundTrip(t *testing.T) {
	f := NewFlightRecorder(16)
	f.SetEnabled(true)
	a := FlightClassFor("test.roundtrip.a")
	b := FlightClassFor("test.roundtrip.b")
	f.Record(a, 3, 0xdeadbeef, 4096, 128)
	f.Record(b, -1, 0, -7, 9)
	path := filepath.Join(t.TempDir(), "flight.bin")
	if err := f.WriteDump(path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.TornBytes != 0 {
		t.Errorf("clean dump reports %d torn bytes", d.TornBytes)
	}
	if len(d.Events) != 2 {
		t.Fatalf("loaded %d events, want 2", len(d.Events))
	}
	ev := d.Events[0]
	if ev.Class != "test.roundtrip.a" || ev.Rank != 3 || ev.Trace != 0xdeadbeef ||
		ev.A != 4096 || ev.B != 128 {
		t.Errorf("event 0 mismatch: %+v", ev)
	}
	ev = d.Events[1]
	if ev.Class != "test.roundtrip.b" || ev.Rank != -1 || ev.A != -7 || ev.B != 9 {
		t.Errorf("event 1 mismatch: %+v", ev)
	}
}

// TestFlightDumpTornTail: a dump truncated mid-frame (the writer died) still
// yields every complete frame, with the torn remainder counted, and a
// corrupted frame truncates the same way.
func TestFlightDumpTornTail(t *testing.T) {
	f := NewFlightRecorder(16)
	f.SetEnabled(true)
	class := FlightClassFor("test.torn")
	for i := 0; i < 4; i++ {
		f.Record(class, 0, 0, int64(i), 0)
	}
	full := f.EncodeFlightDump()
	path := filepath.Join(t.TempDir(), "torn.bin")

	// Truncate inside the final frame.
	if err := os.WriteFile(path, full[:len(full)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 3 {
		t.Errorf("torn dump salvaged %d events, want 3", len(d.Events))
	}
	if d.TornBytes == 0 {
		t.Error("torn dump reports no torn bytes")
	}

	// Flip a payload byte in the last frame: CRC must reject it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-5] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 3 {
		t.Errorf("corrupt-tail dump salvaged %d events, want 3", len(d.Events))
	}
	if d.TornBytes == 0 {
		t.Error("corrupt-tail dump reports no torn bytes")
	}

	// A foreign file is an error, not an empty dump.
	if err := os.WriteFile(path, []byte("not a dump"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFlightDump(path); err == nil {
		t.Error("foreign file loaded without error")
	}
}

// TestFormatFlightDumpAttribution: the post-mortem rendering names the
// violating op of a consistency violation and the dump trigger.
func TestFormatFlightDumpAttribution(t *testing.T) {
	d := &FlightDump{Events: []FlightEvent{
		{Seq: 1, Class: "pfs.write.begin", Rank: 2, A: 0, B: 64},
		{Seq: 2, Class: "consistency.violation", Rank: 5, Trace: 0xabc, A: 41, B: 512},
		{Seq: 3, Class: "flight.trigger", Rank: -1},
	}}
	out := FormatFlightDump(d)
	for _, want := range []string{
		"3 event(s)",
		"consistency violation",
		"violating read seq=41",
		"rank=5",
		"trace=0xabc",
		"offset=512",
		"dump trigger = flight.trigger",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted dump missing %q:\n%s", want, out)
		}
	}
}

// TestArmAndTriggerFlightDump: arming enables the process-wide recorder and
// pins the dump path; TriggerFlightDump writes a loadable dump containing
// the trigger event; disarming stops recording.
func TestArmAndTriggerFlightDump(t *testing.T) {
	Flight().Reset()
	t.Cleanup(func() {
		ArmFlightDump("")
		Flight().Reset()
	})
	path := filepath.Join(t.TempDir(), "armed.bin")
	ArmFlightDump(path)
	if !Flight().Enabled() {
		t.Fatal("ArmFlightDump did not enable the recorder")
	}
	if got := FlightDumpPath(); got != path {
		t.Fatalf("FlightDumpPath = %q, want %q", got, path)
	}
	Flight().Record(FlightClassFor("test.armed"), 1, 0, 10, 20)
	wrote, err := TriggerFlightDump("Unit Test!")
	if err != nil {
		t.Fatal(err)
	}
	if wrote != path {
		t.Fatalf("TriggerFlightDump wrote to %q, want %q", wrote, path)
	}
	d, err := LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]bool{}
	for _, ev := range d.Events {
		classes[ev.Class] = true
	}
	for _, want := range []string{"test.armed", "flight.reason.unit-test", "flight.trigger"} {
		if !classes[want] {
			t.Errorf("dump missing class %q (have %v)", want, classes)
		}
	}

	ArmFlightDump("")
	if Flight().Enabled() {
		t.Error("disarming left the recorder enabled")
	}
	if p, err := TriggerFlightDump("noop"); p != "" || err != nil {
		t.Errorf("disarmed trigger = (%q, %v), want no-op", p, err)
	}
}
