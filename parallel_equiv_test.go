package semfs_test

import (
	"testing"

	semfs "repro"
	"repro/internal/analysistest"
)

// TestAnalyzeParallelMatchesSerial is the acceptance gate of the parallel
// analysis engine: for every application configuration of the registry, the
// concurrent path must reproduce the serial paper analysis exactly —
// verdicts, per-file conflict lists, Table 3 patterns, Figure 1 mixes, the
// Figure 3 census and the metadata dependencies. The serial path is the
// oracle; any divergence is a bug in the parallel engine, never tolerated
// as "close enough".
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	for _, name := range semfs.Applications() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			analysistest.CheckApp(t, name, semfs.RunOptions{Ranks: 16, PPN: 2, Seed: 1})
		})
	}
}

// TestAnalyzeParallelMatchesSerialAcrossSeeds varies the simulation seed on
// a conflict-heavy and a metadata-heavy configuration so the equivalence
// claim is not an artifact of one particular trace.
func TestAnalyzeParallelMatchesSerialAcrossSeeds(t *testing.T) {
	for _, name := range []string{"FLASH-nofbs", "MACSio-Silo"} {
		for seed := uint64(1); seed <= 3; seed++ {
			analysistest.CheckApp(t, name, semfs.RunOptions{Ranks: 8, PPN: 2, Seed: seed}, 0, 3)
		}
	}
}
