// Package ckpt is the durable, checksummed checkpoint store behind the
// repo's crash-safe sweeps. It eats the paper's dog food: the store's only
// durability primitives are the commit points the paper says applications
// actually rely on — an atomic write-temp → fsync → rename for the manifest
// and an append → fsync write-ahead journal for completed work units. A
// record is committed exactly when its fsync returns; recovery CRC-verifies
// every record, salvages the valid prefix of a torn tail (the shape a crash
// mid-append leaves behind), and truncates the damage so the journal stays
// append-clean.
//
// The store is generic: keys are strings, blobs are opaque bytes, and the
// manifest pins whatever identity the caller needs (schema version, sweep
// scale, consistency model) so a resume against the wrong directory fails
// loudly instead of replaying foreign results. internal/experiments journals
// completed configuration results (see EncodeResult/DecodeResult);
// cmd/semanalyze journals rendered analyses; cmd/pfsbench journals ablation
// cells.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SchemaVersion is the on-disk format version stamped into every manifest.
// Open refuses a store written by a different version.
const SchemaVersion = 1

const (
	manifestName = "ckpt.json"
	journalName  = "journal.wal"
)

// Manifest identifies what a checkpoint directory holds. Open compares every
// field; a mismatch means the directory belongs to a different run shape and
// must not be resumed from.
type Manifest struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"` // e.g. "experiments.sweep", "semanalyze", "pfsbench"
	Ranks     int    `json:"ranks,omitempty"`
	PPN       int    `json:"ppn,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Params    string `json:"params,omitempty"` // canonical workload parameters
}

// ErrMismatch reports a checkpoint directory whose manifest does not match
// the run being resumed.
var ErrMismatch = errors.New("ckpt: checkpoint belongs to a different run")

// Store is a durable key → blob journal store rooted in one directory. It is
// safe for concurrent appends (sweep workers commit results as they finish).
type Store struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	committed map[string][]byte
	stats     RecoverStats
}

// Open opens (creating if needed) the checkpoint store at dir. m.Version is
// stamped with SchemaVersion. A fresh directory gets the manifest written
// atomically; an existing one must carry an equal manifest, and its journal
// is recovered — CRC-verified, torn tail salvaged and truncated — before the
// store accepts appends.
func Open(dir string, m Manifest) (*Store, error) {
	m.Version = SchemaVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	existing, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		var have Manifest
		if jerr := json.Unmarshal(existing, &have); jerr != nil {
			return nil, fmt.Errorf("ckpt: parsing %s: %w", mpath, jerr)
		}
		if have != m {
			return nil, fmt.Errorf("%w: %s holds %+v, want %+v", ErrMismatch, dir, have, m)
		}
	case os.IsNotExist(err):
		b, jerr := json.MarshalIndent(m, "", "  ")
		if jerr != nil {
			return nil, fmt.Errorf("ckpt: %w", jerr)
		}
		if werr := atomicWriteFile(mpath, append(b, '\n')); werr != nil {
			return nil, werr
		}
	default:
		return nil, fmt.Errorf("ckpt: %w", err)
	}

	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	byKey, stats, good, err := recoverJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate the torn tail (if any) so appends continue from the last
	// intact record, then position at the end.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	recoverKept.Add(int64(stats.Records))
	recoverDropped.Add(int64(stats.Dropped))
	recoverTruncated.Add(stats.TailBytes)
	return &Store{dir: dir, f: f, committed: byKey, stats: stats}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns what recovery found when the store was opened.
func (s *Store) Stats() RecoverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of committed keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.committed)
}

// Keys returns the committed keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.committed))
	for k := range s.committed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the committed blob for key. Every call counts toward the
// ckpt.resume.{hits,misses} telemetry — callers consult the store exactly
// when deciding whether cached work can replace re-execution.
func (s *Store) Lookup(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.committed[key]
	if ok {
		resumeHits.Inc()
	} else {
		resumeMisses.Inc()
	}
	return b, ok
}

// Append commits one key → blob record: it is durable (and visible to a
// future Recover) exactly when Append returns nil. Appending an existing key
// supersedes it (last-wins on recovery).
func (s *Store) Append(key string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("ckpt: store is closed")
	}
	if _, err := appendRecord(s.f, key, blob); err != nil {
		return err
	}
	s.committed[key] = append([]byte(nil), blob...)
	return nil
}

// Close releases the journal file. The store's contents are already durable;
// Close exists for tidiness, not for commit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// ReadJournal recovers dir's journal read-only: committed keys (sorted) plus
// salvage stats, without truncating damage or touching the manifest. Tooling
// and the kill-and-recover harness use it to inspect what a crashed run
// committed.
func ReadJournal(dir string) ([]string, RecoverStats, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	byKey, stats, _, err := recoverJournal(f)
	if err != nil {
		return nil, stats, err
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, stats, nil
}

// atomicWriteFile writes path via write-temp → fsync → rename → fsync(dir):
// the file either exists with the full content or not at all, never torn —
// the commit discipline the paper's applications rely on, applied to our own
// metadata.
func atomicWriteFile(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// Publish the rename itself: fsync the directory so the new name
	// survives a crash (best-effort on platforms that refuse dir fsync).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
