package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/consistency"
	"repro/internal/obs"
	"repro/internal/pfs"
)

// Cross-model comparison telemetry: one run per (configuration, model)
// cell. Names: experiments.consistency.*.
var (
	consistencyRuns   = obs.Default().Counter("experiments.consistency.runs")
	consistencyWall   = obs.Default().Histogram("experiments.consistency.run_wall_ns")
	consistencyFailed = obs.Default().Counter("experiments.consistency.failed")
)

// ConsistencyCell is one (configuration, model) cell of the cross-model
// comparison: the model-dependent performance counters of the run, plus
// the formal-spec verdict over its recorded op history.
type ConsistencyCell struct {
	Config    string
	Semantics pfs.Semantics

	ElapsedNS    uint64 // simulated wall time of the traced phase
	LockAcquires int64  // strong-semantics lock round trips
	StaleReads   int64  // reads that saw less than the strong view
	VisWaitMaxNS int64  // worst distance from the strong view (simulated ns)

	Events   int    // recorded history length (setup + traced phases)
	Accepted bool   // history satisfies the model's formal spec
	Clause   string // failed predicate clause when rejected
}

// ConsistencyComparison reruns application configurations under all four
// consistency models with the op-history recorder attached, verifies every
// history against the model's executable formal spec (internal/
// consistency), and reports the per-model cost counters — the executable
// analogue of the follow-up paper's cross-model performance comparison
// (visibility wait and locking cost per model; see PAPERS.md), with each
// cell certified semantics-conforming by the checker.
//
// names selects configurations (apps.Lookup names); nil means the full
// registry. Cells come back grouped by configuration in registry order.
func ConsistencyComparison(ctx context.Context, s Scale, names []string) ([]ConsistencyCell, error) {
	var cfgs []*apps.Config
	if len(names) == 0 {
		cfgs = apps.Registry()
	} else {
		for _, n := range names {
			cfg, ok := apps.Lookup(n)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown configuration %q", n)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	var cells []ConsistencyCell
	for _, cfg := range cfgs {
		for _, sem := range pfs.AllSemantics() {
			if err := ctx.Err(); err != nil {
				return cells, err
			}
			cell, err := consistencyCell(cfg, sem, s)
			if err != nil {
				consistencyFailed.Inc()
				return cells, fmt.Errorf("experiments: %s under %v: %w", cfg.Name(), sem, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func consistencyCell(cfg *apps.Config, sem pfs.Semantics, s Scale) (ConsistencyCell, error) {
	span := obs.Default().Tracer().Start(cfg.Name()+"/"+sem.String(), "experiments.consistency")
	defer span.End()
	start := time.Now()
	defer func() { consistencyWall.Observe(time.Since(start).Nanoseconds()) }()
	consistencyRuns.Inc()

	fs := pfs.New(pfs.Options{Semantics: sem})
	log := consistency.NewLog()
	fs.SetHistoryRecorder(log)
	res, err := apps.Execute(cfg, apps.Options{
		Ranks:     s.Ranks,
		PPN:       s.PPN,
		Seed:      s.Seed,
		Semantics: sem,
		FS:        fs,
		Params:    s.Params,
	})
	if err != nil {
		return ConsistencyCell{}, err
	}
	if err := res.Err(); err != nil {
		return ConsistencyCell{}, err
	}
	var elapsed uint64
	for _, rs := range res.Trace.PerRank {
		if len(rs) > 0 && rs[len(rs)-1].TEnd > elapsed {
			elapsed = rs[len(rs)-1].TEnd
		}
	}
	st := fs.Stats()
	check := consistency.CheckLog(sem, log, consistency.Options{
		EventualDelayNS: fs.Options().EventualDelay,
	})
	cell := ConsistencyCell{
		Config:       cfg.Name(),
		Semantics:    sem,
		ElapsedNS:    elapsed,
		LockAcquires: st.LockAcquires,
		StaleReads:   st.StaleReads,
		VisWaitMaxNS: st.VisibilityWaitMaxNS,
		Events:       check.Events,
		Accepted:     check.OK(),
	}
	if !check.OK() {
		cell.Clause = check.Violation.Clause
	}
	return cell, nil
}

// ConsistencyTable renders the cross-model comparison: per configuration,
// one row per model with its locking cost, staleness exposure and
// spec verdict.
func ConsistencyTable(cells []ConsistencyCell) string {
	ordered := append([]ConsistencyCell(nil), cells...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Config != ordered[j].Config {
			return ordered[i].Config < ordered[j].Config
		}
		return ordered[i].Semantics < ordered[j].Semantics
	})
	var b strings.Builder
	b.WriteString("Cross-model consistency comparison (formal-spec-checked runs)\n\n")
	fmt.Fprintf(&b, "%-20s  %-9s  %12s  %10s  %11s  %13s  %8s  %s\n",
		"configuration", "semantics", "elapsed(ms)", "lock acqs",
		"stale reads", "vis-wait(ms)", "events", "spec")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, c := range ordered {
		verdict := "ok"
		if !c.Accepted {
			verdict = "REJECTED " + c.Clause
		}
		fmt.Fprintf(&b, "%-20s  %-9s  %12.2f  %10d  %11d  %13.2f  %8d  %s\n",
			c.Config, c.Semantics, float64(c.ElapsedNS)/1e6, c.LockAcquires,
			c.StaleReads, float64(c.VisWaitMaxNS)/1e6, c.Events, verdict)
	}
	return b.String()
}
