package colfmt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/recorder"
	"repro/internal/storage"
)

// genStream builds a deterministic, TStart-sorted rank stream with the
// shapes real traces have: interleaved layers, repeated paths (dictionary
// back-refs), pathless data ops, Path2 renames, and varied arg counts.
func genStream(rank, n int, seed int64) []recorder.Record {
	rng := rand.New(rand.NewSource(seed))
	paths := []string{"/ckpt/step0001", "/ckpt/step0002", "/data/mesh.h5", "/out/results.dat", ""}
	t := uint64(rng.Intn(100))
	recs := make([]recorder.Record, 0, n)
	for i := 0; i < n; i++ {
		r := recorder.Record{
			Rank:   int32(rank),
			Layer:  recorder.LayerPOSIX,
			TStart: t,
			TEnd:   t + uint64(rng.Intn(50)),
			Path:   paths[rng.Intn(len(paths))],
		}
		switch i % 5 {
		case 0:
			r.Func = recorder.FuncOpen
			r.Args = []int64{int64(recorder.OCreat | recorder.OWronly), 0o644, int64(3 + i%7)}
		case 1:
			r.Func = recorder.FuncPwrite
			r.Path = ""
			r.Args = []int64{int64(3 + i%7), 4096, int64(i) * 4096, 4096}
		case 2:
			r.Func = recorder.FuncRename
			r.Path2 = paths[rng.Intn(4)]
		case 3:
			r.Layer = recorder.LayerHDF5
			r.Func = recorder.FuncH5Dwrite
		case 4:
			r.Func = recorder.FuncClose
			r.Path = ""
			r.Args = []int64{int64(3 + i%7)}
		}
		recs = append(recs, r)
		t += uint64(rng.Intn(20))
	}
	return recs
}

func encode(t *testing.T, rank int, recs []recorder.Record, opts EncodeOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, rank, recs, opts); err != nil {
		t.Fatalf("EncodeStream: %v", err)
	}
	return buf.Bytes()
}

func requireRecordsEqual(t *testing.T, want, got []recorder.Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("record count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("record %d differs:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		opts EncodeOptions
	}{
		{"empty", 0, EncodeOptions{}},
		{"single", 1, EncodeOptions{}},
		{"one-block", 100, EncodeOptions{}},
		{"many-blocks", 1000, EncodeOptions{BlockRecords: 16}},
		{"block-boundary", 64, EncodeOptions{BlockRecords: 16}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs := genStream(3, tc.n, 42)
			data := encode(t, 3, recs, tc.opts)
			r, err := NewReader(data)
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			if r.Rank() != 3 || r.Declared() != tc.n {
				t.Fatalf("header: rank %d declared %d", r.Rank(), r.Declared())
			}
			if !r.HasFooter() {
				t.Fatal("intact stream has no footer")
			}
			got, err := r.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			requireRecordsEqual(t, recs, got)
		})
	}
}

// TestCrossFormatParity pins that both formats decode a stream to identical
// records — the per-stream half of the analysis-equivalence gate.
func TestCrossFormatParity(t *testing.T) {
	recs := genStream(1, 500, 7)
	var v1 bytes.Buffer
	if err := recorder.EncodeRankStream(&v1, 1, recs); err != nil {
		t.Fatal(err)
	}
	_, fromV1, err := recorder.DecodeRankStream(&v1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(encode(t, 1, recs, EncodeOptions{BlockRecords: 64}))
	if err != nil {
		t.Fatal(err)
	}
	fromCol, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	requireRecordsEqual(t, fromV1, fromCol)
}

// TestCursorReuse pins the zero-copy contract: the cursor yields the same
// sequence the materializer does, through a reused record.
func TestCursorReuse(t *testing.T) {
	recs := genStream(2, 300, 9)
	r, err := NewReader(encode(t, 2, recs, EncodeOptions{BlockRecords: 32}))
	if err != nil {
		t.Fatal(err)
	}
	c := r.Cursor()
	var prev *recorder.Record
	for i := 0; c.Next(); i++ {
		rec := c.Record()
		if prev != nil && prev != rec {
			t.Fatal("cursor did not reuse its record")
		}
		prev = rec
		got := *rec
		if len(got.Args) > 0 {
			got.Args = append([]int64(nil), got.Args...)
		}
		if !reflect.DeepEqual(recs[i], got) {
			t.Fatalf("record %d differs:\nwant %+v\ngot  %+v", i, recs[i], got)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if c.Stats().Records != len(recs) {
		t.Fatalf("stats records %d, want %d", c.Stats().Records, len(recs))
	}
}

// TestTornTail cuts an encoded stream at every byte boundary: strict decode
// must fail (prefix preserved), lenient decode must keep exactly the blocks
// before the cut with Declared-exact drop accounting, and nothing may panic
// or over-read.
func TestTornTail(t *testing.T) {
	const n = 96
	recs := genStream(0, n, 11)
	data := encode(t, 0, recs, EncodeOptions{BlockRecords: 16})
	for cut := 0; cut < len(data); cut++ {
		torn := data[:cut]
		r, err := NewReader(torn)
		if err != nil {
			continue // header gone: unreadable, nothing to salvage
		}
		if r.HasFooter() {
			t.Fatalf("cut=%d: torn stream claims an intact footer", cut)
		}
		got, err := r.Materialize()
		if err == nil {
			// The cut only ate trailer bytes: every record and the
			// dictionary survived, so the decode is legitimately complete.
			requireRecordsEqual(t, recs, got)
			continue
		}
		requireRecordsEqual(t, recs[:len(got)], got)
		lr, err2 := NewReader(torn)
		if err2 != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err2)
		}
		sal, stats, serr := lr.MaterializeLenient()
		requireRecordsEqual(t, recs[:len(sal)], sal)
		if len(sal)%16 != 0 {
			t.Fatalf("cut=%d: salvage kept a partial block (%d records)", cut, len(sal))
		}
		if serr == nil {
			t.Fatalf("cut=%d: lenient decode reported no loss", cut)
		}
		var te *recorder.TruncatedError
		if errors.As(serr, &te) {
			if te.Declared != n || te.Decoded != stats.Records {
				t.Fatalf("cut=%d: truncation accounting %+v (stats %+v)", cut, te, stats)
			}
			if !errors.Is(serr, recorder.ErrTruncated) {
				t.Fatalf("cut=%d: TruncatedError not Is(ErrTruncated)", cut)
			}
		}
	}
}

// TestCorruptBlockSkip flips a byte inside one mid-stream block: the strict
// walk fails, and the lenient walk — footer intact — skips exactly that
// block and keeps every other record.
func TestCorruptBlockSkip(t *testing.T) {
	const n, per = 128, 16
	recs := genStream(4, n, 13)
	data := encode(t, 4, recs, EncodeOptions{BlockRecords: per})
	// Find the third data block's payload and corrupt a byte in it.
	off := len(Magic)
	_, off, _ = uvarintAt(data, off)
	_, off, _ = uvarintAt(data, off)
	for b := 0; b < 2; b++ {
		plen := int(uint32(data[off+1]) | uint32(data[off+2])<<8 | uint32(data[off+3])<<16 | uint32(data[off+4])<<24)
		off += frameHdrLen + plen
	}
	mut := bytes.Clone(data)
	mut[off+frameHdrLen+3] ^= 0xff

	r, err := NewReader(mut)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasFooter() {
		t.Fatal("footer should survive a mid-stream flip")
	}
	if _, err := r.Materialize(); err == nil {
		t.Fatal("strict decode accepted a corrupt block")
	} else {
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Block != 2 {
			t.Fatalf("want CorruptError at block 2, got %v", err)
		}
	}
	lr, _ := NewReader(mut)
	got, stats, serr := lr.MaterializeLenient()
	if serr != nil {
		t.Fatalf("lenient walk errored: %v", serr)
	}
	if stats.Skipped != 1 || stats.Blocks != n/per-1 {
		t.Fatalf("stats %+v, want 1 skipped of %d", stats, n/per)
	}
	want := append(append([]recorder.Record(nil), recs[:2*per]...), recs[3*per:]...)
	requireRecordsEqual(t, want, got)
}

func TestOpenMapsOnDisk(t *testing.T) {
	dir := t.TempDir()
	recs := genStream(0, 200, 17)
	path := filepath.Join(dir, recorder.RankFileName(0))
	var buf bytes.Buffer
	if err := EncodeStream(&buf, 0, recs, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(storage.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close (munmap): %v", err)
	}
	// Records must survive the unmap: paths were interned, args copied.
	requireRecordsEqual(t, recs, got)
}

func mkTrace(ranks, perRank int, seed int64) *recorder.Trace {
	tr := &recorder.Trace{
		Meta:    recorder.Meta{App: "colfmt-test", Ranks: ranks, PPN: 2, Steps: 1, Seed: uint64(seed)},
		PerRank: make([][]recorder.Record, ranks),
	}
	for r := 0; r < ranks; r++ {
		tr.PerRank[r] = genStream(r, perRank, seed+int64(r))
	}
	return tr
}

func TestDirRoundTripBothFormats(t *testing.T) {
	tr := mkTrace(6, 150, 21)
	for _, f := range []Format{FormatColumnar, FormatV1} {
		for _, workers := range []int{0, 1, 3} {
			t.Run(fmt.Sprintf("%v/w%d", f, workers), func(t *testing.T) {
				dir := t.TempDir()
				if err := SaveDir(dir, tr, f); err != nil {
					t.Fatal(err)
				}
				got, err := LoadDir(dir, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(tr.Meta, got.Meta) {
					t.Fatalf("meta differs: %+v vs %+v", tr.Meta, got.Meta)
				}
				for r := range tr.PerRank {
					requireRecordsEqual(t, tr.PerRank[r], got.PerRank[r])
				}
			})
		}
	}
}

// TestMixedFormatDir pins per-file sniffing: a directory whose ranks are
// half v1, half columnar loads as one trace.
func TestMixedFormatDir(t *testing.T) {
	tr := mkTrace(4, 80, 23)
	dir := t.TempDir()
	if err := SaveDir(dir, tr, FormatColumnar); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r += 2 {
		var buf bytes.Buffer
		if err := recorder.EncodeRankStream(&buf, r, tr.PerRank[r]); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, recorder.RankFileName(r)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tr.PerRank {
		requireRecordsEqual(t, tr.PerRank[r], got.PerRank[r])
	}
}

func TestConvertDir(t *testing.T) {
	tr := mkTrace(3, 120, 29)
	v1dir, coldir, backdir := t.TempDir(), t.TempDir(), t.TempDir()
	if err := SaveDir(v1dir, tr, FormatV1); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertDirOn(storage.OS(), v1dir, coldir, FormatColumnar, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertDirOn(storage.OS(), coldir, backdir, FormatV1, 2); err != nil {
		t.Fatal(err)
	}
	a, err := LoadDir(coldir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadDir(backdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tr.PerRank {
		requireRecordsEqual(t, tr.PerRank[r], a.PerRank[r])
		requireRecordsEqual(t, tr.PerRank[r], b.PerRank[r])
	}
	if _, err := ConvertDirOn(storage.OS(), v1dir, v1dir, FormatColumnar, 0); err == nil {
		t.Fatal("in-place convert accepted")
	}
}

// TestLoadDirLenientTornFixture is the seeded multi-rank torn-trace
// fixture: per-rank damage (torn tails at seeded offsets, one missing file,
// one mid-block corruption) must salvage deterministically — identical
// Salvage at every worker count, rank-ordered errors, exact Dropped.
func TestLoadDirLenientTornFixture(t *testing.T) {
	const ranks, perRank = 8, 64
	tr := mkTrace(ranks, perRank, 31)
	dir := t.TempDir()
	// Re-save with small blocks so tears land mid-stream.
	if err := saveSmallBlocks(dir, tr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	damage := map[int]string{}
	for _, rank := range []int{1, 4} { // torn tails at seeded offsets
		path := filepath.Join(dir, recorder.RankFileName(rank))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := len(Magic) + 4 + rng.Intn(len(data)-len(Magic)-4)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		damage[rank] = "torn"
	}
	if err := os.Remove(filepath.Join(dir, recorder.RankFileName(6))); err != nil { // missing
		t.Fatal(err)
	}
	damage[6] = "missing"
	{ // mid-block payload corruption with intact footer
		path := filepath.Join(dir, recorder.RankFileName(2))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := len(Magic)
		_, off, _ = uvarintAt(data, off)
		_, off, _ = uvarintAt(data, off)
		for blk := 0; blk < 3; blk++ { // walk to the fourth block's payload
			plen := int(uint32(data[off+1]) | uint32(data[off+2])<<8 | uint32(data[off+3])<<16 | uint32(data[off+4])<<24)
			off += frameHdrLen + plen
		}
		data[off+frameHdrLen+2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damage[2] = "corrupt"
	}

	var first *recorder.Salvage
	for _, workers := range []int{0, 1, 2, 8} {
		got, sal, err := LoadDirLenient(dir, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Undamaged ranks load fully; damaged ranks keep a valid prefix (or
		// block subset) of their original records.
		for r := 0; r < ranks; r++ {
			recs := got.PerRank[r]
			if damage[r] == "" {
				requireRecordsEqual(t, tr.PerRank[r], recs)
			} else if damage[r] == "torn" {
				requireRecordsEqual(t, tr.PerRank[r][:len(recs)], recs)
			}
		}
		if sal.Ranks != ranks || sal.Unreadable == 0 || sal.Truncated == 0 {
			t.Fatalf("workers=%d: salvage %+v", workers, sal)
		}
		// Exact drop accounting: every record not loaded from a
		// header-declaring stream is dropped (rank 6's file is gone — its
		// records are not in any stream's declared count).
		wantDropped := 0
		for r := 0; r < ranks; r++ {
			if r != 6 {
				wantDropped += perRank - len(got.PerRank[r])
			}
		}
		if sal.Dropped != wantDropped {
			t.Fatalf("workers=%d: Dropped=%d want %d", workers, sal.Dropped, wantDropped)
		}
		if sal.BlocksDropped == 0 {
			t.Fatalf("workers=%d: corruption skipped no blocks: %+v", workers, sal)
		}
		// Determinism across worker counts, including error order.
		if first == nil {
			first = sal
			for i := 1; i < len(sal.Errs); i++ {
				if sal.Errs[i-1].Error() >= sal.Errs[i].Error() {
					// Errors are rank-ordered; file names sort with rank.
					t.Fatalf("errors out of rank order: %v", sal.Errs)
				}
			}
		} else {
			if sal.Full != first.Full || sal.Truncated != first.Truncated ||
				sal.Unreadable != first.Unreadable || sal.Records != first.Records ||
				sal.Salvaged != first.Salvaged || sal.Dropped != first.Dropped ||
				sal.Blocks != first.Blocks || sal.BlocksDropped != first.BlocksDropped ||
				len(sal.Errs) != len(first.Errs) {
				t.Fatalf("salvage varies with workers:\n%+v\n%+v", sal, first)
			}
			for i := range sal.Errs {
				if sal.Errs[i].Error() != first.Errs[i].Error() {
					t.Fatalf("error %d varies with workers: %q vs %q", i, sal.Errs[i], first.Errs[i])
				}
			}
		}
	}
}

// saveSmallBlocks saves tr columnar with 8-record blocks so fixture damage
// lands mid-stream.
func saveSmallBlocks(dir string, tr *recorder.Trace) error {
	if err := storage.OS().MkdirAll(dir); err != nil {
		return err
	}
	if err := SaveDir(dir, tr, FormatColumnar); err != nil {
		return err
	}
	for rank, rs := range tr.PerRank {
		var buf bytes.Buffer
		if err := EncodeStream(&buf, rank, rs, EncodeOptions{BlockRecords: 8}); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, recorder.RankFileName(rank)), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// TestBackendFallback pins the storage seam: a flaky-wrapped or objstore
// backend must not be mmap'd (its Read hooks have to fire), and loads still
// work through the ReadFile fallback.
func TestBackendFallback(t *testing.T) {
	tr := mkTrace(3, 60, 37)
	dir := t.TempDir()
	if err := SaveDir(dir, tr, FormatColumnar); err != nil {
		t.Fatal(err)
	}
	fb := storage.NewFlaky(storage.OS(), storage.Schedule{})
	if storage.MapsFiles(fb) {
		t.Fatal("flaky backend claims mappable files")
	}
	if !storage.MapsFiles(storage.NewRetry(storage.OS(), storage.RetryOptions{})) {
		t.Fatal("retry-over-osdisk should be mappable")
	}
	got, err := LoadDirOn(fb, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tr.PerRank {
		requireRecordsEqual(t, tr.PerRank[r], got.PerRank[r])
	}
}
