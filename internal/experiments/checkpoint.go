package experiments

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/storage"
)

// Checkpoint/resume support for registry sweeps: the store's manifest pins
// the sweep's full identity (scale, seed, consistency model, workload
// parameters), so a -resume against a directory written by a different run
// shape fails with ckpt.ErrMismatch instead of replaying foreign results.

// CheckpointKind is the manifest kind of registry-sweep stores.
const CheckpointKind = "experiments.sweep"

// OpenCheckpoint opens (or creates) the durable checkpoint store for a
// registry sweep at scale s on the local OS disk. Pass the returned store
// in SweepOptions.Checkpoint; set SweepOptions.Resume to replay what a
// previous (possibly crashed) run already committed.
func OpenCheckpoint(dir string, s Scale) (*ckpt.Store, error) {
	return OpenCheckpointOn(storage.OS(), dir, s)
}

// OpenCheckpointOn is OpenCheckpoint against an explicit storage backend —
// how the CLIs' -backend flag routes sweep checkpoints onto the object
// store or a fault-wrapped store.
func OpenCheckpointOn(b storage.Backend, dir string, s Scale) (*ckpt.Store, error) {
	return ckpt.OpenOn(b, dir, ckpt.Manifest{
		Kind:      CheckpointKind,
		Ranks:     s.Ranks,
		PPN:       s.PPN,
		Seed:      s.Seed,
		Semantics: s.Semantics.String(),
		Params:    fmt.Sprintf("%+v", s.Params),
	})
}

// ResumeSummary reports how a checkpointed sweep's results were obtained.
type ResumeSummary struct {
	Replayed int // configurations served from the journal
	Executed int // configurations that actually ran
}

// Summarize counts replayed versus executed configurations in r.
func (r *Results) Summarize() ResumeSummary {
	var s ResumeSummary
	for _, name := range r.Ordered {
		if r.ByName[name].Replayed {
			s.Replayed++
		} else {
			s.Executed++
		}
	}
	return s
}

// ReplayedNames returns the names of configurations served from the journal,
// in registry order.
func (r *Results) ReplayedNames() []string {
	var out []string
	for _, name := range r.Ordered {
		if r.ByName[name].Replayed {
			out = append(out, name)
		}
	}
	return out
}

// ExecutedNames returns the names of configurations that actually ran, in
// registry order.
func (r *Results) ExecutedNames() []string {
	var out []string
	for _, name := range r.Ordered {
		if !r.ByName[name].Replayed {
			out = append(out, name)
		}
	}
	return out
}
