// Package ckpt is the durable, checksummed checkpoint store behind the
// repo's crash-safe sweeps. It eats the paper's dog food: the store's only
// durability primitives are the commit points the paper says applications
// actually rely on — an atomic write-temp → fsync → rename for the manifest
// and an append → fsync write-ahead journal for completed work units. A
// record is committed exactly when its fsync returns; recovery CRC-verifies
// every record, salvages the valid prefix of a torn tail (the shape a crash
// mid-append leaves behind), and truncates the damage so the journal stays
// append-clean.
//
// The store is generic: keys are strings, blobs are opaque bytes, and the
// manifest pins whatever identity the caller needs (schema version, sweep
// scale, consistency model) so a resume against the wrong directory fails
// loudly instead of replaying foreign results. internal/experiments journals
// completed configuration results (see EncodeResult/DecodeResult);
// cmd/semanalyze journals rendered analyses; cmd/pfsbench journals ablation
// cells.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/storage"
)

// SchemaVersion is the on-disk format version stamped into every manifest.
// Open refuses a store written by a different version.
const SchemaVersion = 1

const (
	manifestName = "ckpt.json"
	journalName  = "journal.wal"
)

// Manifest identifies what a checkpoint directory holds. Open compares every
// field; a mismatch means the directory belongs to a different run shape and
// must not be resumed from.
type Manifest struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"` // e.g. "experiments.sweep", "semanalyze", "pfsbench"
	Ranks     int    `json:"ranks,omitempty"`
	PPN       int    `json:"ppn,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Params    string `json:"params,omitempty"` // canonical workload parameters
}

// ErrMismatch reports a checkpoint directory whose manifest does not match
// the run being resumed.
var ErrMismatch = errors.New("ckpt: checkpoint belongs to a different run")

// ErrBackendConfig marks a store whose storage backend proved persistently
// unavailable: the retry policy exhausted its budget, so this is an
// operator/configuration problem (wrong endpoint, dead disk), not data
// damage. The ckpt layer demotes storage.ErrUnavailable to this — a sweep
// must refuse to start rather than half-run against a store it cannot
// commit to.
var ErrBackendConfig = errors.New("ckpt: storage backend unavailable (configuration error)")

// demote maps an exhausted-backend failure onto the configuration-error
// rung of the degradation ladder; other errors pass through.
func demote(err error) error {
	if err != nil && errors.Is(err, storage.ErrUnavailable) {
		return fmt.Errorf("%w: %w", ErrBackendConfig, err)
	}
	return err
}

// Store is a durable key → blob journal store rooted in one directory. It is
// safe for concurrent appends (sweep workers commit results as they finish).
type Store struct {
	dir     string
	backend storage.Backend

	mu        sync.Mutex
	f         storage.File
	committed map[string][]byte
	stats     RecoverStats
}

// Open opens (creating if needed) the checkpoint store at dir on the local
// OS disk — byte-identical to the pre-seam layout. See OpenOn.
func Open(dir string, m Manifest) (*Store, error) {
	return OpenOn(storage.OS(), dir, m)
}

// OpenOn opens (creating if needed) the checkpoint store at dir on backend
// b. m.Version is stamped with SchemaVersion. A fresh directory gets the
// manifest written atomically; an existing one must carry an equal
// manifest, and its journal is recovered — CRC-verified, torn tail salvaged
// and truncated — before the store accepts appends. On an eventually-
// consistent backend the open first waits out the publish-visibility
// horizon so resume sees everything a crashed run managed to commit. A
// persistently unavailable backend surfaces as ErrBackendConfig.
func OpenOn(b storage.Backend, dir string, m Manifest) (*Store, error) {
	m.Version = SchemaVersion
	storage.Settle(b)
	if err := b.MkdirAll(dir); err != nil {
		return nil, demote(fmt.Errorf("ckpt: %w", err))
	}
	mpath := filepath.Join(dir, manifestName)
	existing, err := b.ReadFile(mpath)
	switch {
	case err == nil:
		var have Manifest
		if jerr := json.Unmarshal(existing, &have); jerr != nil {
			return nil, fmt.Errorf("ckpt: parsing %s: %w", mpath, jerr)
		}
		if have != m {
			return nil, fmt.Errorf("%w: %s holds %+v, want %+v", ErrMismatch, dir, have, m)
		}
	case storage.IsNotExist(err):
		jb, jerr := json.MarshalIndent(m, "", "  ")
		if jerr != nil {
			return nil, fmt.Errorf("ckpt: %w", jerr)
		}
		if werr := storage.WriteFileAtomic(b, mpath, append(jb, '\n')); werr != nil {
			return nil, demote(fmt.Errorf("ckpt: %w", werr))
		}
	default:
		return nil, demote(fmt.Errorf("ckpt: %w", err))
	}

	jpath := filepath.Join(dir, journalName)
	f, err := b.Open(jpath, storage.OCreate|storage.ORdwr, 0o644)
	if err != nil {
		return nil, demote(fmt.Errorf("ckpt: %w", err))
	}
	byKey, stats, good, err := recoverJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate the torn tail (if any) so appends continue from the last
	// intact record, then position at the end.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	recoverKept.Add(int64(stats.Records))
	recoverDropped.Add(int64(stats.Dropped))
	recoverTruncated.Add(stats.TailBytes)
	return &Store{dir: dir, backend: b, f: f, committed: byKey, stats: stats}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns what recovery found when the store was opened.
func (s *Store) Stats() RecoverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of committed keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.committed)
}

// Keys returns the committed keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.committed))
	for k := range s.committed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the committed blob for key. Every call counts toward the
// ckpt.resume.{hits,misses} telemetry — callers consult the store exactly
// when deciding whether cached work can replace re-execution.
func (s *Store) Lookup(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.committed[key]
	if ok {
		resumeHits.Inc()
	} else {
		resumeMisses.Inc()
	}
	return b, ok
}

// Append commits one key → blob record: it is durable (and visible to a
// future Recover) exactly when Append returns nil. Appending an existing key
// supersedes it (last-wins on recovery).
func (s *Store) Append(key string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("ckpt: store is closed")
	}
	if _, err := appendRecord(s.f, key, blob); err != nil {
		return demote(err)
	}
	s.committed[key] = append([]byte(nil), blob...)
	return nil
}

// Close releases the journal file. The store's contents are already durable;
// Close exists for tidiness, not for commit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// ReadJournal recovers dir's journal read-only on the local OS disk. See
// ReadJournalOn.
func ReadJournal(dir string) ([]string, RecoverStats, error) {
	return ReadJournalOn(storage.OS(), dir)
}

// ReadJournalOn recovers dir's journal read-only: committed keys (sorted)
// plus salvage stats, without truncating damage or touching the manifest.
// Tooling and the kill-and-recover harness use it to inspect what a crashed
// run committed; on an eventual backend it waits out the visibility horizon
// first.
func ReadJournalOn(b storage.Backend, dir string) ([]string, RecoverStats, error) {
	storage.Settle(b)
	f, err := b.Open(filepath.Join(dir, journalName), storage.ORdonly, 0)
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	byKey, stats, _, err := recoverJournal(f)
	if err != nil {
		return nil, stats, err
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, stats, nil
}

// The manifest commit (write-temp → fsync → rename → fsync(dir) — the
// discipline the paper's applications rely on, applied to our own metadata)
// now lives in storage.WriteFileAtomic so every backend supplies its own
// strongest version of it.
