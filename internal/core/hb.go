package core

import (
	"fmt"
	"sort"

	"repro/internal/recorder"
)

// HB is the happens-before relation reconstructed from a trace's MPI-layer
// records, used for the §5.2 validation: matching sends to receives and
// collective invocations to each other, so we can confirm that the
// timestamp order of conflicting I/O operations matches the execution order
// imposed by the program's synchronization.
type HB struct {
	ranks  int
	events [][]hbEvent // per rank, in stream order
}

type hbEvent struct {
	rec *recorder.Record
	vc  []int32 // vc[r] = number of rank-r MPI events known (inclusive)
	seq int64   // collective sequence number, -1 for p2p
}

type nodeID struct{ rank, idx int }

// BuildHB reconstructs the happens-before relation. Send k from r to s with
// a tag matches receive k on s from r with that tag; collective records
// match by their sequence-number argument.
func BuildHB(tr *recorder.Trace) (*HB, error) {
	hb := &HB{ranks: len(tr.PerRank)}
	hb.events = make([][]hbEvent, hb.ranks)

	// Collect MPI events per rank.
	for rank, rs := range tr.PerRank {
		for i := range rs {
			if rs[i].Layer != recorder.LayerMPI {
				continue
			}
			seq := int64(-1)
			if isCollective(rs[i].Func) {
				seq = rs[i].Arg(2)
			}
			hb.events[rank] = append(hb.events[rank], hbEvent{rec: &rs[i], seq: seq})
		}
	}

	// Build edges: program order, send→recv, collective joins (via a
	// virtual node joining every participant's predecessor).
	preds := make(map[nodeID][]nodeID)
	sendQueues := make(map[[3]int][]nodeID) // (src,dst,tag) -> send nodes in order
	recvCount := make(map[[3]int]int)
	collParts := make(map[int64][]nodeID)

	for rank := range hb.events {
		for i := range hb.events[rank] {
			n := nodeID{rank, i}
			if i > 0 {
				preds[n] = append(preds[n], nodeID{rank, i - 1})
			}
			ev := &hb.events[rank][i]
			switch ev.rec.Func {
			case recorder.FuncMPISend:
				key := [3]int{rank, int(ev.rec.Arg(0)), int(ev.rec.Arg(1))}
				sendQueues[key] = append(sendQueues[key], n)
			default:
				if ev.seq >= 0 {
					collParts[ev.seq] = append(collParts[ev.seq], n)
				}
			}
		}
	}
	// Match receives to sends.
	for rank := range hb.events {
		for i := range hb.events[rank] {
			ev := &hb.events[rank][i]
			if ev.rec.Func != recorder.FuncMPIRecv {
				continue
			}
			key := [3]int{int(ev.rec.Arg(0)), rank, int(ev.rec.Arg(1))}
			k := recvCount[key]
			recvCount[key] = k + 1
			sends := sendQueues[key]
			if k >= len(sends) {
				return nil, fmt.Errorf("core: receive %d on rank %d from %d tag %d has no matching send",
					k, rank, ev.rec.Arg(0), ev.rec.Arg(1))
			}
			n := nodeID{rank, i}
			preds[n] = append(preds[n], sends[k])
		}
	}
	// Collectives: every participant's predecessor happens-before every
	// participant's completion.
	for _, parts := range collParts {
		for _, a := range parts {
			if a.idx == 0 {
				continue
			}
			pred := nodeID{a.rank, a.idx - 1}
			for _, b := range parts {
				if b != a {
					preds[b] = append(preds[b], pred)
				}
			}
		}
	}

	// Vector clocks in timestamp order (simulation timestamps respect the
	// edges, so a single pass by TStart is a valid topological order).
	order := make([]nodeID, 0)
	for rank := range hb.events {
		for i := range hb.events[rank] {
			order = append(order, nodeID{rank, i})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ea := hb.events[order[a].rank][order[a].idx].rec
		eb := hb.events[order[b].rank][order[b].idx].rec
		if ea.TEnd != eb.TEnd {
			return ea.TEnd < eb.TEnd
		}
		return ea.TStart < eb.TStart
	})
	for _, n := range order {
		ev := &hb.events[n.rank][n.idx]
		vc := make([]int32, hb.ranks)
		for _, p := range preds[n] {
			pv := hb.events[p.rank][p.idx].vc
			if pv == nil {
				return nil, fmt.Errorf("core: predecessor %v of %v not yet processed (timestamps violate happens-before)", p, n)
			}
			for r := range vc {
				if pv[r] > vc[r] {
					vc[r] = pv[r]
				}
			}
		}
		if own := int32(n.idx + 1); own > vc[n.rank] {
			vc[n.rank] = own
		}
		ev.vc = vc
	}
	return hb, nil
}

func isCollective(f recorder.Func) bool {
	switch f {
	case recorder.FuncMPIBarrier, recorder.FuncMPIBcast, recorder.FuncMPIReduce,
		recorder.FuncMPIAllreduce, recorder.FuncMPIGather, recorder.FuncMPIGatherv,
		recorder.FuncMPIScatter, recorder.FuncMPIAllgather, recorder.FuncMPIAlltoall:
		return true
	}
	return false
}

// OrderedIO reports whether an I/O operation on rankA ending at tAEnd
// happens-before an I/O operation on rankB starting at tB, according to the
// program's synchronization. Same-rank operations are ordered by program
// order; cross-rank ordering requires an MPI event on rankA at or after
// tAEnd that happens-before an MPI event on rankB at or before tB.
func (hb *HB) OrderedIO(rankA int32, tAEnd uint64, rankB int32, tB uint64) bool {
	if rankA == rankB {
		return tAEnd <= tB
	}
	x := hb.firstEventAtOrAfter(int(rankA), tAEnd)
	y := hb.lastEventAtOrBefore(int(rankB), tB)
	if x < 0 || y < 0 {
		return false
	}
	ex := &hb.events[rankA][x]
	ey := &hb.events[rankB][y]
	// Same collective instance: entry at all ranks precedes completion at
	// any rank, so the pair is synchronized.
	if ex.seq >= 0 && ex.seq == ey.seq {
		return true
	}
	return ey.vc[rankA] >= int32(x+1)
}

func (hb *HB) firstEventAtOrAfter(rank int, t uint64) int {
	evs := hb.events[rank]
	for i := range evs {
		if evs[i].rec.TStart >= t {
			return i
		}
	}
	return -1
}

func (hb *HB) lastEventAtOrBefore(rank int, t uint64) int {
	evs := hb.events[rank]
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].rec.TEnd <= t {
			return i
		}
	}
	return -1
}

// ValidateConflicts checks the §5.2 property for a set of detected
// conflicts: every conflicting pair must be ordered by the program's
// synchronization (the applications are race-free). It returns the pairs
// that are NOT provably ordered.
func ValidateConflicts(hb *HB, conflicts []Conflict) []Conflict {
	var unordered []Conflict
	for _, c := range conflicts {
		if !hb.OrderedIO(c.First.Rank, c.First.TEnd, c.Second.Rank, c.Second.T) {
			unordered = append(unordered, c)
		}
	}
	return unordered
}
