//go:build unix

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/faults"
	"repro/internal/pfs"
)

// Kill-and-recover harness: the parent re-execs this test binary as a child
// sweep, SIGKILLs it at a randomized journal offset (via SEMFS_KILL), then
// resumes from the checkpoint directory and proves the recovered run is
// indistinguishable from one that never crashed — byte-identical final
// report, and zero journaled-complete configurations re-executed.

const (
	crashDirEnv    = "SEMFS_CRASH_DIR"
	crashOutEnv    = "SEMFS_CRASH_OUT"
	crashSemEnv    = "SEMFS_CRASH_SEM"
	crashResumeEnv = "SEMFS_CRASH_RESUME"
)

// childStats is what a completed child reports back to the parent.
type childStats struct {
	Executed []string // configurations that actually ran
	Replayed []string // configurations served from the journal
}

// renderFinalReport is the deterministic artifact the crash must not be able
// to perturb: every paper table/figure that consumes the sweep's traces.
func renderFinalReport(r *Results) string {
	return Table3(r) + Table4(r) + Figure3(r) + MetaTable(r) + VerdictsReport(r)
}

// TestKillRecoverChild is the re-exec'd child body; without the env gate it
// is skipped. It runs the full registry sweep against the checkpoint
// directory and — if it survives the armed kill point — writes the final
// report and its execution stats for the parent to compare.
func TestKillRecoverChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("not in a kill-and-recover child")
	}
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		t.Fatalf("arming kill points: %v", err)
	}
	sem, err := pfs.ParseSemantics(os.Getenv(crashSemEnv))
	if err != nil {
		t.Fatalf("bad %s: %v", crashSemEnv, err)
	}
	scale := TestScale()
	scale.Semantics = sem

	store, err := OpenCheckpoint(dir, scale)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	defer store.Close()
	r, err := RunAllCtx(context.Background(), scale, SweepOptions{
		Checkpoint: store,
		Resume:     os.Getenv(crashResumeEnv) == "1",
	})
	if err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}

	out := os.Getenv(crashOutEnv)
	if err := os.WriteFile(filepath.Join(out, "report.txt"), []byte(renderFinalReport(r)), 0o644); err != nil {
		t.Fatal(err)
	}
	stats := childStats{Executed: r.ExecutedNames(), Replayed: r.ReplayedNames()}
	b, err := json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, "stats.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runChild re-execs the test binary into the child above.
func runChild(t *testing.T, ckptDir, outDir, sem, killSpec string, resume bool) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestKillRecoverChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashDirEnv+"="+ckptDir,
		crashOutEnv+"="+outDir,
		crashSemEnv+"="+sem,
		faults.KillEnv+"="+killSpec,
	)
	if resume {
		cmd.Env = append(cmd.Env, crashResumeEnv+"=1")
	} else {
		cmd.Env = append(cmd.Env, crashResumeEnv+"=")
	}
	return cmd.CombinedOutput()
}

func readChildStats(t *testing.T, outDir string) childStats {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(outDir, "stats.json"))
	if err != nil {
		t.Fatalf("child stats: %v", err)
	}
	var s childStats
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("child stats: %v", err)
	}
	return s
}

// TestKillRecover is the acceptance matrix: for each consistency model, a
// checkpointed sweep is SIGKILLed at a randomized journal offset, resumed,
// and compared against an uninterrupted reference run.
func TestKillRecover(t *testing.T) {
	if os.Getenv(crashDirEnv) != "" {
		t.Skip("inside a kill-and-recover child")
	}
	semantics := []pfs.Semantics{pfs.Strong, pfs.Commit, pfs.Session, pfs.Eventual}
	if testing.Short() {
		semantics = semantics[:2]
	}
	// Rotate through every commit-path kill point; the seeded RNG picks the
	// journal offset (the Nth append) so runs are reproducible.
	points := []string{
		"ckpt.append.begin",
		"ckpt.append.torn",
		"ckpt.append.before-fsync",
		"ckpt.append.after-fsync",
	}
	registry := len(apps.Registry())

	for i, sem := range semantics {
		sem := sem
		rng := rand.New(rand.NewSource(0xC0FFEE + int64(i)))
		kill := fmt.Sprintf("%s:%d", points[i%len(points)], 1+rng.Intn(10))
		t.Run(sem.String(), func(t *testing.T) {
			t.Parallel()
			ckptDir := filepath.Join(t.TempDir(), "ckpt")
			refOut := t.TempDir()
			crashOut := t.TempDir()
			resumeOut := t.TempDir()

			// Uninterrupted reference run with its own store.
			out, err := runChild(t, filepath.Join(t.TempDir(), "ref-ckpt"), refOut, sem.String(), "", false)
			if err != nil {
				t.Fatalf("reference run: %v\n%s", err, out)
			}

			// Crash run: must die by SIGKILL, not finish, not error out.
			out, err = runChild(t, ckptDir, crashOut, sem.String(), kill, false)
			if err == nil {
				t.Fatalf("child armed with %s completed instead of dying\n%s", kill, out)
			}
			var ee *exec.ExitError
			ok := false
			if e, isExit := err.(*exec.ExitError); isExit {
				ee = e
				if ws, isWait := ee.Sys().(syscall.WaitStatus); isWait {
					ok = ws.Signaled() && ws.Signal() == syscall.SIGKILL
				}
			}
			if !ok {
				t.Fatalf("child armed with %s did not die by SIGKILL: %v\n%s", kill, err, out)
			}
			if _, err := os.Stat(filepath.Join(crashOut, "report.txt")); !os.IsNotExist(err) {
				t.Fatal("crashed child left a report behind")
			}

			// What the crash left durable, read without repairing anything.
			recovered, rstats, err := ckpt.ReadJournal(ckptDir)
			if err != nil {
				t.Fatalf("ReadJournal: %v", err)
			}
			t.Logf("kill=%s: journal after crash: %v (%d keys)", kill, rstats, len(recovered))

			// Resume run: completes, and replays everything the journal holds.
			out, err = runChild(t, ckptDir, resumeOut, sem.String(), "", true)
			if err != nil {
				t.Fatalf("resume run: %v\n%s", err, out)
			}
			stats := readChildStats(t, resumeOut)

			committed := make(map[string]bool, len(recovered))
			for _, k := range recovered {
				committed[k] = true
			}
			for _, name := range stats.Executed {
				if committed[name] {
					t.Errorf("journaled-complete configuration %q was re-executed on resume", name)
				}
			}
			replayed := make(map[string]bool, len(stats.Replayed))
			for _, k := range stats.Replayed {
				replayed[k] = true
			}
			for _, k := range recovered {
				if !replayed[k] {
					t.Errorf("journaled configuration %q was not replayed on resume", k)
				}
			}
			if got := len(stats.Executed) + len(stats.Replayed); got != registry {
				t.Errorf("resume covered %d configurations, want %d", got, registry)
			}

			// The whole point: a crash plus resume is invisible in the output.
			ref, err := os.ReadFile(filepath.Join(refOut, "report.txt"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := os.ReadFile(filepath.Join(resumeOut, "report.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if string(ref) != string(res) {
				t.Errorf("resumed report differs from the uninterrupted reference (%d vs %d bytes)", len(ref), len(res))
			}
		})
	}
}
