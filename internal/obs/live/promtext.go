// Package live is the HTTP exposition layer over internal/obs: the
// Prometheus text-format /metrics endpoint, the generation-keyed
// /metrics.json snapshots, and /healthz, started via the shared
// -serve-metrics flag (obs.ServeMetricsHook, installed by this package's
// init). It is the live telemetry plane the ROADMAP's semfsd streaming
// service stands on: everything the exit-time -metrics snapshot reports —
// visibility lag, WAL drain depth, conflict verdicts — scrapeable while
// the run is still in flight.
//
// live imports obs, never the reverse; binaries opt in with a blank
// import, so obs itself stays dependency-free for the hot paths.
package live

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// MangleName rewrites a dotted obs instrument name ("pfs.visibility_lag.strong")
// into a valid Prometheus metric name ("pfs_visibility_lag_strong"): every
// character outside [a-zA-Z0-9_] becomes '_', and a leading digit gets a
// '_' prefix.
func MangleName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// PromText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): per family a # HELP line carrying the original dotted
// obs name, a # TYPE line, then the samples. Counters and gauges are one
// sample each; histograms expand to cumulative _bucket{le="..."} samples
// (le is the largest integer the power-of-two bucket can hold, le="0" the
// dedicated zero bucket, le="+Inf" the total), plus _sum and _count.
// Families are sorted by metric name, so the rendering is a deterministic
// function of the snapshot. generation, when nonzero, is emitted as a
// leading "# generation N" comment — comments other than HELP/TYPE are
// ignored by conforming parsers but let a scraper pair this text with the
// /metrics.json snapshot of the same generation.
func PromText(s obs.Snapshot, generation uint64) string {
	var b strings.Builder
	if generation != 0 {
		fmt.Fprintf(&b, "# generation %d\n", generation)
	}
	type family struct {
		prom, orig, typ string
		render          func()
	}
	var fams []family
	for name, v := range s.Counters {
		v := v
		prom := MangleName(name)
		fams = append(fams, family{prom, name, "counter", func() {
			fmt.Fprintf(&b, "%s %d\n", prom, v)
		}})
	}
	for name, v := range s.Gauges {
		v := v
		prom := MangleName(name)
		fams = append(fams, family{prom, name, "gauge", func() {
			fmt.Fprintf(&b, "%s %d\n", prom, v)
		}})
	}
	for name, h := range s.Histograms {
		h := h
		prom := MangleName(name)
		fams = append(fams, family{prom, name, "histogram", func() {
			cum := h.Zero
			if h.Zero > 0 || len(h.Buckets) > 0 {
				fmt.Fprintf(&b, "%s_bucket{le=\"0\"} %d\n", prom, cum)
			}
			for _, bk := range h.Buckets {
				cum += bk.N
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", prom, bk.Hi-1, cum)
			}
			// A snapshot racing an Observe can see a bucket increment whose
			// count increment it missed; clamp the total up so the cumulative
			// series stays monotone (what the strict parser checks).
			total := h.Count
			if cum > total {
				total = cum
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", prom, total)
			fmt.Fprintf(&b, "%s_sum %d\n", prom, h.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", prom, total)
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].prom < fams[j].prom })
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s obs instrument %s\n", f.prom, f.orig)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.prom, f.typ)
		f.render()
	}
	return b.String()
}
