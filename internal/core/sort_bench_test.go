package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// BenchmarkIndexSort isolates the satellite swap this PR makes in the sweep
// hot loop: the reflect-based closure sort.Slice versus the typed
// slices.SortFunc over the same index permutation and comparator. Run with
// -benchmem; the closure variant allocates for the interface header and
// pays reflect-driven swaps, the typed variant does neither.
func BenchmarkIndexSort(b *testing.B) {
	mk := func(n int) []Interval {
		rng := rand.New(rand.NewSource(int64(n)))
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = Interval{T: uint64(rng.Intn(n)), Os: int64(rng.Intn(n * 4))}
		}
		return ivs
	}
	for _, n := range []int{100, 1000, 10000} {
		ivs := mk(n)
		idx := make([]int32, n)
		reset := func() {
			for i := range idx {
				idx[i] = int32(i)
			}
		}
		b.Run(fmt.Sprintf("sortSlice-closure/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reset()
				sort.Slice(idx, func(a, c int) bool {
					ia, ic := &ivs[idx[a]], &ivs[idx[c]]
					if ia.Os != ic.Os {
						return ia.Os < ic.Os
					}
					if ia.T != ic.T {
						return ia.T < ic.T
					}
					return idx[a] < idx[c]
				})
			}
		})
		b.Run(fmt.Sprintf("slicesSortFunc-typed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reset()
				slices.SortFunc(idx, func(a, c int32) int {
					ia, ic := &ivs[a], &ivs[c]
					switch {
					case ia.Os != ic.Os:
						if ia.Os < ic.Os {
							return -1
						}
						return 1
					case ia.T != ic.T:
						if ia.T < ic.T {
							return -1
						}
						return 1
					default:
						return int(a - c)
					}
				})
			}
		})
	}
}
