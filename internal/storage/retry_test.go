package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestBackoffDelayPropertyBounds is the first half of the retry-policy
// property suite: for any seed, Delay is a pure function of (seed, attempt)
// — two independent evaluations agree — and the cumulative sleep across any
// prefix of attempts stays under the analytic, seed-independent
// MaxTotalDelay bound.
func TestBackoffDelayPropertyBounds(t *testing.T) {
	const attempts = 10
	for seed := uint64(1); seed <= 256; seed++ {
		b := Backoff{Seed: seed}
		var total uint64
		for a := 0; a < attempts; a++ {
			d1 := b.Delay(a)
			d2 := Backoff{Seed: seed}.Delay(a) // fresh value, same inputs
			if d1 != d2 {
				t.Fatalf("seed %d attempt %d: Delay not deterministic (%d vs %d)", seed, a, d1, d2)
			}
			total += d1
			if bound := b.MaxTotalDelay(a + 1); total > bound {
				t.Fatalf("seed %d: total sleep %d after %d attempts exceeds bound %d",
					seed, total, a+1, bound)
			}
		}
	}
}

// TestRetryTotalSleepDeterministicAndBounded drives the policy wrapper
// itself against an always-transient backend with an instrumented Sleep:
// the observed sleep sequence is identical run to run for a fixed seed,
// its total is under MaxTotalDelay, and exhaustion surfaces as
// ErrUnavailable (ErrTransient deliberately shed) with Healthy() sticky
// false.
func TestRetryTotalSleepDeterministicAndBounded(t *testing.T) {
	const maxAttempts = 5
	run := func(seed uint64) ([]time.Duration, error) {
		var sleeps []time.Duration
		b := NewRetry(NewFlaky(OS(), Schedule{WedgeAfter: 1}), RetryOptions{
			MaxAttempts: maxAttempts,
			Backoff:     Backoff{Seed: seed},
			Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		})
		f, err := b.Open(filepath.Join(t.TempDir(), "x.dat"), OCreate|OWronly, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if _, err := f.Write([]byte("warm")); err != nil { // pre-wedge, succeeds
			return nil, err
		}
		_, werr := f.Write([]byte("doomed")) // wedged: transient forever
		if Health(b) {
			return nil, errors.New("policy exhausted but Health still true")
		}
		return sleeps, werr
	}

	for seed := uint64(1); seed <= 16; seed++ {
		s1, err1 := run(seed)
		s2, err2 := run(seed)
		if err1 == nil || err2 == nil {
			t.Fatalf("seed %d: wedged write succeeded (%v, %v)", seed, err1, err2)
		}
		if !errors.Is(err1, ErrUnavailable) {
			t.Fatalf("seed %d: exhaustion err = %v, want ErrUnavailable", seed, err1)
		}
		if errors.Is(err1, ErrTransient) {
			t.Fatalf("seed %d: exhaustion error still transient — the layer above would keep retrying", seed)
		}
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: sleep sequences differ in length (%d vs %d)", seed, len(s1), len(s2))
		}
		var total uint64
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seed %d sleep %d: %v vs %v (not deterministic)", seed, i, s1[i], s2[i])
			}
			total += uint64(s1[i])
		}
		if len(s1) != maxAttempts-1 {
			t.Fatalf("seed %d: %d sleeps, want %d (one between each attempt)", seed, len(s1), maxAttempts-1)
		}
		if bound := (Backoff{Seed: seed}).MaxTotalDelay(maxAttempts - 1); total > bound {
			t.Fatalf("seed %d: total sleep %d exceeds analytic bound %d", seed, total, bound)
		}
	}
}

// TestRetryTransientOnlyConverges is the second half of the property suite:
// for any seed, a workload run against a flaky backend with a
// transient-only schedule completes with no error surfacing and no health
// degradation — the policy absorbs every injected fault.
func TestRetryTransientOnlyConverges(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sched := GenSchedule(seed, GenOptions{
				Count: 6,
				Kinds: []FaultKind{FaultTransient, FaultRenameFail},
			})
			if !sched.TransientOnly() {
				t.Fatalf("schedule not transient-only:\n%s", sched.Encode())
			}
			fb := NewFlaky(OS(), sched)
			b := NewRetry(fb, RetryOptions{Sleep: func(time.Duration) {}})
			dir := t.TempDir()
			for i := 0; i < 12; i++ {
				path := filepath.Join(dir, fmt.Sprintf("f%02d.dat", i))
				if err := WriteFileAtomic(b, path, []byte(fmt.Sprintf("payload %d", i))); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				if got, err := b.ReadFile(path); err != nil || string(got) != fmt.Sprintf("payload %d", i) {
					t.Fatalf("readback %d: %q, %v", i, got, err)
				}
			}
			if !Health(b) {
				t.Fatalf("transient-only schedule degraded the backend (stats %+v, flaky %+v)",
					b.(*retrier).Stats(), fb.(*flaky).Stats())
			}
			if fb.(*flaky).Stats().Fired == 0 {
				t.Fatalf("schedule never fired — the property was tested against nothing:\n%s", sched.Encode())
			}
		})
	}
}

// TestRetryDeadlineShortCircuits: when the next backoff cannot fit in the
// per-op deadline, the policy stops sleeping and exhausts early instead of
// overshooting the budget.
func TestRetryDeadlineShortCircuits(t *testing.T) {
	var clock time.Time // zero time; advanced manually
	var slept int
	b := NewRetry(NewFlaky(OS(), Schedule{WedgeAfter: 0, Injections: []FaultInjection{
		{Kind: FaultTransient, N: 1, Arg: 99}, // effectively forever
	}}), RetryOptions{
		MaxAttempts: 8,
		Deadline:    time.Millisecond, // far under the first backoff delay
		Backoff:     Backoff{BaseNS: uint64(10 * time.Millisecond)},
		Sleep:       func(time.Duration) { slept++ },
		Now:         func() time.Time { return clock },
	})
	f, err := b.Open(filepath.Join(t.TempDir(), "x.dat"), OCreate|OWronly, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, werr := f.Write([]byte("doomed"))
	if !errors.Is(werr, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", werr)
	}
	if slept != 0 {
		t.Fatalf("slept %d times past a deadline that cannot fit any backoff", slept)
	}
}
